use std::time::Instant;

use tiresias_hierarchy::{NodeId, Tree};
use tiresias_timeseries::Series;

use crate::config::HhhConfig;
use crate::error::HhhError;
use crate::memory::MemoryReport;
use crate::model::Model;
use crate::shhh::{
    aggregate_weights, aggregate_weights_into, compute_shhh, compute_shhh_into, series_values,
    ShhhResult,
};
use crate::split_rule::{SplitStats, StatRow};
use crate::surgery::compact_vec;
use crate::timings::StageTimings;

use tiresias_hierarchy::TreeSurgery;

/// Detached per-node ADA state for an extracted set of top-level
/// subtrees, aligned with [`TreeSurgery::moved`]. Produced by
/// [`Ada::extract_nodes`] on the shard losing the subtrees and consumed
/// by [`Ada::adopt_nodes`] on the shard gaining them.
#[derive(Debug)]
pub struct AdaSlice {
    nodes: Vec<AdaNode>,
    series_len: usize,
    instances: u64,
}

#[derive(Debug)]
struct AdaNode {
    in_shhh: bool,
    ishh: bool,
    washh: bool,
    tosplit: bool,
    weight: f64,
    agg: f64,
    series: Option<NodeSeries>,
    ref_actual: Option<Series>,
    stats: StatRow,
}

/// The time-series state bound to a live heavy hitter node.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct NodeSeries {
    /// Modified-weight history (`n.actual`), oldest → newest.
    actual: Series,
    /// One-step forecasts aligned with `actual` (`n.forecast`).
    forecast: Series,
    /// The forecasting model, positioned to predict the next timeunit.
    model: Model,
}

/// Read-only view of one live heavy hitter, produced by [`Ada::view`].
#[derive(Debug)]
pub struct HeavyHitterView<'a> {
    /// The heavy hitter node.
    pub node: NodeId,
    /// Modified-weight history, oldest → newest.
    pub actual: &'a Series,
    /// One-step forecasts aligned with `actual`.
    pub forecast: &'a Series,
    /// The node's modified weight in the newest timeunit (`T[n, 1]`).
    pub latest_actual: f64,
    /// The forecast that was made for the newest timeunit (`F[n, 1]`).
    pub latest_forecast: f64,
}

/// The adaptive algorithm **ADA** (Fig. 5–8 of the paper).
///
/// ADA maintains a *single* tree. Every heavy hitter node owns its
/// bounded time series and forecaster state; when the heavy hitter set
/// drifts between timeunits, that state is moved through the hierarchy
/// rather than rebuilt:
///
/// * `SPLIT` (Fig. 7, §V-B4) hands a node's series down to its
///   non-heavy-hitter children, apportioned by a [`crate::SplitRule`],
///   when a new heavy hitter emerged below it;
/// * `MERGE` (Fig. 8) sums the series of heavy hitters that fell below θ
///   into their parent;
/// * **reference time series** (§V-B5), kept for nodes in the top `h`
///   levels, replace a freshly split child's approximate series with the
///   exact `T_REF − Σ T(heavy-hitter descendants)` whenever available.
///
/// Heavy-hitter *membership* is always exact (Lemma 1) — it is recomputed
/// from Definition 2 every timeunit in O(|tree|) — only the series
/// *contents* inherited through splits are approximate, with error
/// decaying exponentially under the forecaster's smoothing (Fig. 9).
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::Tree;
/// use tiresias_hhh::{Ada, HhhConfig, ModelSpec};
///
/// let mut tree = Tree::new("All");
/// let leaf = tree.insert_path(&["TV", "No Service"]);
/// let cfg = HhhConfig::new(5.0, 16).with_model(ModelSpec::Ewma { alpha: 0.5 });
/// let mut ada = Ada::new(cfg)?;
/// for _ in 0..10 {
///     let mut direct = vec![0.0; tree.len()];
///     direct[leaf.index()] = 7.0;
///     ada.push_timeunit(&tree, &direct);
/// }
/// assert!(ada.is_heavy_hitter(leaf));
/// let view = ada.view(leaf).unwrap();
/// assert_eq!(view.latest_actual, 7.0);
/// # Ok::<(), tiresias_hhh::HhhError>(())
/// ```
///
/// `Ada` is fully serialisable (serde), so a long-running deployment can
/// checkpoint its tracker state and resume after a restart without
/// replaying the window.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ada {
    config: HhhConfig,
    /// Current SHHH membership (the paper's `SHHH` set).
    in_shhh: Vec<bool>,
    /// Definition-2 flags of the current timeunit (`n.ishh`).
    ishh: Vec<bool>,
    /// Membership before this timeunit's adaptation (`n.washh`).
    washh: Vec<bool>,
    /// Split propagation marks (`n.tosplit`).
    tosplit: Vec<bool>,
    /// Definition-2 modified weights of the current timeunit
    /// (`n.weight`).
    weight: Vec<f64>,
    /// Aggregate (original) weights `A_n` of the current timeunit.
    agg: Vec<f64>,
    /// Per-node series state; `Some` iff the node is in SHHH (plus a
    /// transient exception for the root between instances).
    series: Vec<Option<NodeSeries>>,
    /// Reference time series of `A_n` for nodes in levels `1..=h`.
    ref_actual: Vec<Option<Series>>,
    /// Statistics feeding the split-ratio heuristics.
    stats: SplitStats,
    /// Current aligned length of every live series (≤ ℓ).
    series_len: usize,
    /// Global timeunits processed (including any initialisation
    /// history).
    instances: u64,
    members: Vec<NodeId>,
    timings: StageTimings,
    /// Recycled Definition-2 buffers for the per-unit sweep; pure
    /// scratch, rebuilt every timeunit, so excluded from checkpoints.
    #[serde(skip)]
    scratch: ShhhResult,
}

impl Ada {
    /// Creates an ADA tracker with no history. The first timeunits cold-
    /// start heavy hitters with zero series; prefer
    /// [`Ada::with_history`] when a warm-up window is available.
    ///
    /// # Errors
    ///
    /// Returns [`HhhError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: HhhConfig) -> Result<Self, HhhError> {
        config.validate().map_err(HhhError::InvalidConfig)?;
        Ok(Ada {
            config,
            in_shhh: Vec::new(),
            ishh: Vec::new(),
            washh: Vec::new(),
            tosplit: Vec::new(),
            weight: Vec::new(),
            agg: Vec::new(),
            series: Vec::new(),
            ref_actual: Vec::new(),
            stats: SplitStats::with_len(0),
            series_len: 0,
            instances: 0,
            members: Vec::new(),
            timings: StageTimings::default(),
            scratch: ShhhResult::default(),
        })
    }

    /// Creates an ADA tracker warm-started from a window of historical
    /// timeunits (the paper's first-instance STA-style initialisation,
    /// Fig. 5 lines 2–5): heavy hitters are detected on the newest unit
    /// and their series reconstructed exactly over the whole window.
    ///
    /// # Errors
    ///
    /// Returns [`HhhError::InvalidConfig`] for invalid configurations or
    /// [`HhhError::Model`] if the forecasting model cannot be built.
    ///
    /// # Panics
    ///
    /// Panics if any history unit is shorter than the tree.
    pub fn with_history(
        config: HhhConfig,
        tree: &Tree,
        history: &[Vec<f64>],
    ) -> Result<Self, HhhError> {
        let mut ada = Ada::new(config)?;
        ada.ensure_capacity(tree);
        let keep = history.len().min(ada.config.ell);
        if keep == 0 {
            return Ok(ada);
        }
        let window = &history[history.len() - keep..];
        // Older units may predate tree growth; one scratch buffer pads
        // each unit to the current tree size as it is visited (absent
        // nodes had zero counts) instead of cloning the whole window.
        let mut padded = vec![0.0; tree.len()];
        fn pad_into(padded: &mut [f64], unit: &[f64]) {
            let n = unit.len().min(padded.len());
            padded[..n].copy_from_slice(&unit[..n]);
            for v in &mut padded[n..] {
                *v = 0.0;
            }
        }

        // Membership from the newest unit (Definition 2).
        pad_into(&mut padded, window.last().expect("window non-empty"));
        let shhh = compute_shhh(tree, &padded, ada.config.theta);
        ada.ishh = shhh.is_member.clone();
        // The adaptation choreography keeps these two in sync, so the
        // second copy can take the buffer by value instead of cloning.
        ada.in_shhh = shhh.is_member;
        ada.weight = shhh.modified;
        ada.members = shhh.members;
        ada.agg = aggregate_weights(tree, &padded);
        ada.series_len = window.len();
        ada.instances = history.len() as u64;
        let start_unit = ada.instances - window.len() as u64;

        // Exact series reconstruction with membership held fixed.
        let mut histories: Vec<Vec<f64>> = vec![Vec::new(); tree.len()];
        for unit in window {
            pad_into(&mut padded, unit);
            let values = series_values(tree, &padded, &ada.in_shhh);
            for &m in &ada.members {
                histories[m.index()].push(values[m.index()]);
            }
        }
        for &m in &ada.members {
            let hist = &histories[m.index()];
            let (model, forecasts) = Model::replay(&ada.config.model, hist, start_unit)?;
            ada.series[m.index()] = Some(NodeSeries {
                actual: Series::from_values(ada.config.ell, hist),
                forecast: Series::from_values(ada.config.ell, &forecasts),
                model,
            });
        }

        // Reference series and split statistics from the full window.
        let mut agg = Vec::new();
        for unit in window {
            pad_into(&mut padded, unit);
            aggregate_weights_into(tree, &padded, &mut agg);
            ada.stats.record_unit(&agg, ada.config.stat_ewma_alpha);
            for n in tree.iter() {
                let depth = tree.depth(n);
                if depth >= 1 && depth <= ada.config.ref_levels {
                    ada.ref_actual[n.index()]
                        .get_or_insert_with(|| Series::with_capacity(ada.config.ell))
                        .push(agg[n.index()]);
                }
            }
        }
        Ok(ada)
    }

    /// The configuration in use.
    pub fn config(&self) -> &HhhConfig {
        &self.config
    }

    /// Global timeunits processed so far.
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// Grows the per-node state to cover a tree that gained nodes.
    fn ensure_capacity(&mut self, tree: &Tree) {
        let len = tree.len();
        if self.in_shhh.len() < len {
            self.in_shhh.resize(len, false);
            self.ishh.resize(len, false);
            self.washh.resize(len, false);
            self.tosplit.resize(len, false);
            self.weight.resize(len, 0.0);
            self.agg.resize(len, 0.0);
            self.series.resize_with(len, || None);
            self.ref_actual.resize_with(len, || None);
            self.stats.resize(len);
        }
    }

    /// A zero series of the current aligned length, with a phase-aligned
    /// zero-state model — the cold-start state of a heavy hitter no
    /// adaptation could supply with history.
    fn zero_series(&self) -> NodeSeries {
        let zeros = vec![0.0; self.series_len];
        let start = self.instances - self.series_len as u64;
        let (model, forecasts) = Model::replay(&self.config.model, &zeros, start)
            .expect("model spec validated at construction");
        NodeSeries {
            actual: Series::from_values(self.config.ell, &zeros),
            forecast: Series::from_values(self.config.ell, &forecasts),
            model,
        }
    }

    /// Feeds the direct (pre-aggregation) counts of one closed timeunit:
    /// updates weights and membership, adapts series via split/merge,
    /// then appends the new observations (Fig. 5, lines 6–29).
    ///
    /// # Panics
    ///
    /// Panics if `direct.len() < tree.len()`.
    pub fn push_timeunit(&mut self, tree: &Tree, direct: &[f64]) {
        assert!(direct.len() >= tree.len(), "direct counts must cover the tree");
        let t0 = Instant::now();
        self.ensure_capacity(tree);

        // Initialisation (lines 6–12): washh ← membership, recompute
        // aggregates and Definition-2 weights/flags for this unit. All
        // three per-node buffers are recycled across timeunits, so the
        // steady-state sweep performs no allocation.
        self.washh.copy_from_slice(&self.in_shhh);
        self.tosplit.iter_mut().for_each(|b| *b = false);
        aggregate_weights_into(tree, direct, &mut self.agg);
        let mut scratch = std::mem::take(&mut self.scratch);
        compute_shhh_into(tree, direct, self.config.theta, &mut scratch);
        std::mem::swap(&mut self.ishh, &mut scratch.is_member);
        std::mem::swap(&mut self.weight, &mut scratch.modified);
        self.scratch = scratch;

        // SHHH and series adaptation (lines 13–25).
        // Mark: a node that is (or passes through) a new heavy hitter
        // and is not yet in SHHH asks its parent to split.
        for n in tree.rev_level_order() {
            if (self.ishh[n.index()] || self.tosplit[n.index()]) && !self.in_shhh[n.index()] {
                if let Some(p) = tree.parent(n) {
                    self.tosplit[p.index()] = true;
                }
            }
        }
        // Top-down splits.
        for n in tree.level_order() {
            let is_root = tree.parent(n).is_none();
            if (self.in_shhh[n.index()] || is_root) && self.tosplit[n.index()] {
                self.split(tree, n);
            }
        }
        // Bottom-up merges.
        for n in tree.rev_level_order() {
            if tree.parent(n).is_some() && self.in_shhh[n.index()] && !self.ishh[n.index()] {
                self.merge_group(tree, n);
            }
        }
        // Root rule (lines 24–25).
        let root = tree.root();
        if self.ishh[root.index()] {
            if !self.in_shhh[root.index()] {
                self.in_shhh[root.index()] = true;
                if self.series[root.index()].is_none() {
                    self.series[root.index()] = Some(self.zero_series());
                }
            }
        } else {
            // Also drops the series a root-isolated split left in place
            // when the root fell out of membership in the same unit —
            // a stale (shorter) series must never survive to a later
            // merge or re-join.
            self.in_shhh[root.index()] = false;
            self.series[root.index()] = None;
        }

        // Reconciliation: with leaf-only data the split/merge choreography
        // above already leaves membership equal to the Definition-2 flags
        // (Lemma 1). Direct counts on *interior* nodes — an extension the
        // paper does not consider — admit one extra case: a node whose
        // residual stays ≥ θ while every child became a heavy hitter has
        // nothing to merge back after its split. Enforce exactness for
        // that case too, seeding from the reference series if available.
        for n in tree.level_order() {
            let i = n.index();
            if self.ishh[i] && !self.in_shhh[i] {
                let series =
                    self.reference_correction(tree, n).unwrap_or_else(|| self.zero_series());
                self.series[i] = Some(series);
                self.in_shhh[i] = true;
            } else if !self.ishh[i] && self.in_shhh[i] && tree.parent(n).is_some() {
                // Fold the stale state into the parent's slot so nothing
                // leaks; membership follows Definition 2.
                self.in_shhh[i] = false;
                self.series[i] = None;
            }
        }
        // Lemma 1: after adaptation, membership equals the Definition-2
        // flags everywhere.
        debug_assert!(
            tree.iter().all(|n| self.in_shhh[n.index()] == self.ishh[n.index()]),
            "SHHH membership diverged from Definition 2"
        );

        let mut members = std::mem::take(&mut self.members);
        members.clear();
        members.extend(tree.level_order().filter(|n| self.in_shhh[n.index()]));
        self.members = members;

        // Time series update (lines 26–29): constant-time appends.
        for &n in &self.members {
            let w = self.weight[n.index()];
            let s = self.series[n.index()].as_mut().expect("member owns series");
            let f = s.model.forecast();
            s.forecast.push(f);
            s.actual.push(w);
            s.model.observe(w);
        }
        // Reference series for the top h levels (§V-B5).
        if self.config.ref_levels > 0 {
            for depth in 1..=self.config.ref_levels.min(tree.max_depth()) {
                for &n in tree.nodes_at_depth(depth) {
                    let cap = self.config.ell;
                    let agg = self.agg[n.index()];
                    let len = self.series_len;
                    self.ref_actual[n.index()]
                        .get_or_insert_with(|| Series::from_values(cap, &vec![0.0; len]))
                        .push(agg);
                }
            }
        }
        self.series_len = (self.series_len + 1).min(self.config.ell);
        self.stats.record_unit(&self.agg, self.config.stat_ewma_alpha);
        self.instances += 1;
        self.timings.updating_hierarchies += t0.elapsed();
    }

    /// `SPLIT(n)` (Fig. 7): hand `n`'s series down to its non-member
    /// children, apportioned by the split rule, and move membership from
    /// `n` to those children. Reference series override the apportioned
    /// copy where available.
    fn split(&mut self, tree: &Tree, n: NodeId) {
        let children: Vec<NodeId> =
            tree.children(n).iter().copied().filter(|c| !self.in_shhh[c.index()]).collect();
        if children.is_empty() {
            return;
        }
        // Guard (Fig. 7 line 2): only split when a genuine heavy hitter
        // is hiding below — checked on aggregates so hidden hitters
        // deeper than one level still trigger the cascade.
        if !children.iter().any(|c| self.agg[c.index()] >= self.config.theta) {
            return;
        }
        let ratios = self.stats.ratios(self.config.split_rule, &children);
        // Root isolation: the root's series stays put and the children
        // seed from their reference series or zeros, so nothing that
        // depends on sibling top-level subtrees flows downwards.
        let isolate = self.config.root_isolation && tree.parent(n).is_none();
        let mut parent_series = if isolate { None } else { self.series[n.index()].take() };
        let last = children.len() - 1;
        for (k, (&c, &ratio)) in children.iter().zip(ratios.iter()).enumerate() {
            // The last child takes the parent's series by value; earlier
            // children clone it. One clone per extra child is inherent
            // (each inherits its own scaled copy), but the final
            // padding copy of the seed implementation is gone.
            let taken = if k == last { parent_series.take() } else { parent_series.clone() };
            let inherited = match taken {
                Some(mut s) => {
                    s.actual.scale(ratio);
                    s.forecast.scale(ratio);
                    s.model.scale(ratio);
                    s
                }
                // A splitting node without a series (the root before it
                // ever joined SHHH) hands down zeros.
                None => self.zero_series(),
            };
            let series = self.reference_correction(tree, c).unwrap_or(inherited);
            self.series[c.index()] = Some(series);
            self.in_shhh[c.index()] = true;
        }
        self.in_shhh[n.index()] = false;
    }

    /// The §V-B5 correction: if `c` has a reference series, rebuild its
    /// series exactly as `T_REF(c) − Σ T(d)` over `c`'s descendants `d`
    /// currently holding series, instead of trusting the split ratio.
    fn reference_correction(&self, tree: &Tree, c: NodeId) -> Option<NodeSeries> {
        let reference = self.ref_actual[c.index()].as_ref()?;
        if reference.len() != self.series_len {
            return None;
        }
        let mut corrected: Vec<f64> = reference.to_vec();
        for d in tree.subtree(c).skip(1) {
            if let Some(ds) = self.series[d.index()].as_ref() {
                if self.in_shhh[d.index()] {
                    for (acc, v) in corrected.iter_mut().zip(ds.actual.iter()) {
                        *acc -= v;
                    }
                }
            }
        }
        let start = self.instances - self.series_len as u64;
        let (model, forecasts) = Model::replay(&self.config.model, &corrected, start).ok()?;
        Some(NodeSeries {
            actual: Series::from_values(self.config.ell, &corrected),
            forecast: Series::from_values(self.config.ell, &forecasts),
            model,
        })
    }

    /// `MERGE` (Fig. 8): `n` is a member that fell below θ. Gather every
    /// sibling (and `n` itself) in the same state and fold their series
    /// into the parent, which joins SHHH in their stead. A parent still
    /// below θ afterwards is merged further up when the bottom-up sweep
    /// reaches its level.
    fn merge_group(&mut self, tree: &Tree, n: NodeId) {
        let np = tree.parent(n).expect("merge_group is never called on the root");
        let group: Vec<NodeId> = tree
            .children(np)
            .iter()
            .copied()
            .filter(|c| self.in_shhh[c.index()] && !self.ishh[c.index()])
            .collect();
        debug_assert!(group.contains(&n));
        // Sum the group's series into the parent's (creating it from
        // zeros if the parent was not a member).
        let mut acc = match self.series[np.index()].take() {
            Some(s) => s,
            None => self.zero_series(),
        };
        for &c in &group {
            if let Some(cs) = self.series[c.index()].take() {
                acc.actual
                    .add_assign_series(&cs.actual)
                    .expect("live series share one aligned length");
                acc.forecast
                    .add_assign_series(&cs.forecast)
                    .expect("live series share one aligned length");
                acc.model.merge(&cs.model).expect("models share one spec and phase");
            }
            self.in_shhh[c.index()] = false;
        }
        self.series[np.index()] = Some(acc);
        self.in_shhh[np.index()] = true;
    }

    /// The current succinct heavy hitter set, in top-down level order.
    pub fn heavy_hitters(&self) -> &[NodeId] {
        &self.members
    }

    /// `true` iff `n` is currently a heavy hitter.
    pub fn is_heavy_hitter(&self, n: NodeId) -> bool {
        self.in_shhh.get(n.index()).copied().unwrap_or(false)
    }

    /// The modified (Definition-2) weight of `n` in the newest timeunit.
    pub fn modified_weight(&self, n: NodeId) -> f64 {
        self.weight.get(n.index()).copied().unwrap_or(0.0)
    }

    /// The aggregate weight `A_n` of the newest timeunit.
    pub fn aggregate_weight(&self, n: NodeId) -> f64 {
        self.agg.get(n.index()).copied().unwrap_or(0.0)
    }

    /// Read-only view of heavy hitter `n`, or `None` if `n` is not a
    /// member (or has not observed a timeunit yet).
    pub fn view(&self, n: NodeId) -> Option<HeavyHitterView<'_>> {
        if !self.is_heavy_hitter(n) {
            return None;
        }
        let s = self.series[n.index()].as_ref()?;
        Some(HeavyHitterView {
            node: n,
            actual: &s.actual,
            forecast: &s.forecast,
            latest_actual: s.actual.latest()?,
            latest_forecast: s.forecast.latest()?,
        })
    }

    /// The reference series of `n` (`A_n` history), if one is kept.
    pub fn reference_series(&self, n: NodeId) -> Option<&Series> {
        self.ref_actual.get(n.index()).and_then(Option::as_ref)
    }

    /// The forecast for the *next* (not yet observed) timeunit of heavy
    /// hitter `n`.
    pub fn next_forecast(&self, n: NodeId) -> Option<f64> {
        if !self.is_heavy_hitter(n) {
            return None;
        }
        self.series[n.index()].as_ref().map(|s| s.model.forecast())
    }

    /// Cumulative stage timings.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Detaches the tracker state of the nodes removed from the tree by
    /// `surgery` and compacts the per-node vectors to match `tree` (the
    /// post-[`Tree::extract_top_subtrees`] tree).
    ///
    /// Under `root_isolation`, a depth-1 subtree's membership, series,
    /// reference series and split statistics are pure functions of its
    /// own record stream, so carrying this slice to another shard's
    /// tracker reproduces exactly the state that shard would hold had
    /// the subtree's records been routed there from the start. Root-node
    /// state (which reflects the grouping) stays behind; it is output-
    /// irrelevant in isolated mode.
    pub fn extract_nodes(&mut self, tree: &Tree, surgery: &TreeSurgery) -> AdaSlice {
        let nodes = surgery
            .moved
            .iter()
            .map(|m| {
                let i = m.old_id.index();
                AdaNode {
                    in_shhh: self.in_shhh.get(i).copied().unwrap_or(false),
                    ishh: self.ishh.get(i).copied().unwrap_or(false),
                    washh: self.washh.get(i).copied().unwrap_or(false),
                    tosplit: self.tosplit.get(i).copied().unwrap_or(false),
                    weight: self.weight.get(i).copied().unwrap_or(0.0),
                    agg: self.agg.get(i).copied().unwrap_or(0.0),
                    series: self.series.get_mut(i).and_then(Option::take),
                    ref_actual: self.ref_actual.get_mut(i).and_then(Option::take),
                    stats: self.stats.row(i),
                }
            })
            .collect();
        compact_vec(&mut self.in_shhh, &surgery.old_to_new);
        compact_vec(&mut self.ishh, &surgery.old_to_new);
        compact_vec(&mut self.washh, &surgery.old_to_new);
        compact_vec(&mut self.tosplit, &surgery.old_to_new);
        compact_vec(&mut self.weight, &surgery.old_to_new);
        compact_vec(&mut self.agg, &surgery.old_to_new);
        compact_vec(&mut self.series, &surgery.old_to_new);
        compact_vec(&mut self.ref_actual, &surgery.old_to_new);
        self.stats.compact(&surgery.old_to_new);
        self.rebuild_members(tree);
        AdaSlice { nodes, series_len: self.series_len, instances: self.instances }
    }

    /// Grafts a detached slice at `new_ids` (the node ids returned by
    /// [`Tree::adopt_top_subtrees`] for the same moved list).
    ///
    /// # Panics
    ///
    /// Panics if the slice was cut at a different global timeline
    /// position than this tracker's (shards rebalance only at epoch
    /// barriers, where `instances` and the aligned series length agree
    /// everywhere), or if `new_ids` does not match the slice.
    pub fn adopt_nodes(&mut self, tree: &Tree, new_ids: &[NodeId], slice: AdaSlice) {
        assert_eq!(slice.instances, self.instances, "adopting across unaligned timelines");
        assert_eq!(slice.series_len, self.series_len, "adopting across unaligned windows");
        assert_eq!(new_ids.len(), slice.nodes.len(), "ids must align with the moved list");
        self.ensure_capacity(tree);
        for (&id, node) in new_ids.iter().zip(slice.nodes) {
            let i = id.index();
            self.in_shhh[i] = node.in_shhh;
            self.ishh[i] = node.ishh;
            self.washh[i] = node.washh;
            self.tosplit[i] = node.tosplit;
            self.weight[i] = node.weight;
            self.agg[i] = node.agg;
            self.series[i] = node.series;
            self.ref_actual[i] = node.ref_actual;
            self.stats.set_row(i, node.stats);
        }
        self.rebuild_members(tree);
    }

    /// Recomputes the member list from the membership flags, in the
    /// top-down level order [`Ada::push_timeunit`] produces.
    fn rebuild_members(&mut self, tree: &Tree) {
        let mut members = std::mem::take(&mut self.members);
        members.clear();
        members.extend(tree.level_order().filter(|n| self.in_shhh[n.index()]));
        self.members = members;
    }

    /// Memory accounting (see [`MemoryReport`]).
    pub fn memory_report(&self, tree: &Tree) -> MemoryReport {
        MemoryReport {
            tree_nodes: tree.len(),
            history_cells: 0,
            series_cells: self
                .series
                .iter()
                .flatten()
                .map(|s| s.actual.len() + s.forecast.len())
                .sum(),
            reference_cells: self.ref_actual.iter().flatten().map(Series::len).sum(),
            heavy_hitters: self.members.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use crate::split_rule::SplitRule;

    fn cfg(theta: f64, ell: usize) -> HhhConfig {
        HhhConfig::new(theta, ell).with_model(ModelSpec::Ewma { alpha: 0.5 }).with_ref_levels(0)
    }

    /// root → {a → {x, y}, b}
    fn tree() -> Tree {
        let mut t = Tree::new("root");
        t.insert_path(&["a", "x"]);
        t.insert_path(&["a", "y"]);
        t.insert_path(&["b"]);
        t
    }

    fn unit(t: &Tree, pairs: &[(&[&str], f64)]) -> Vec<f64> {
        let mut d = vec![0.0; t.len()];
        for (path, w) in pairs {
            d[t.find(path).unwrap().index()] = *w;
        }
        d
    }

    #[test]
    fn membership_matches_definition_every_instance() {
        let t = tree();
        let mut ada = Ada::new(cfg(10.0, 8)).unwrap();
        let patterns: Vec<Vec<f64>> = vec![
            unit(&t, &[(&["a", "x"], 20.0)]),
            unit(&t, &[(&["a", "x"], 3.0), (&["a", "y"], 4.0), (&["b"], 5.0)]),
            unit(&t, &[(&["a", "x"], 30.0), (&["a", "y"], 30.0)]),
            unit(&t, &[(&["b"], 11.0)]),
            unit(&t, &[]),
        ];
        for d in &patterns {
            ada.push_timeunit(&t, d);
            let expected = compute_shhh(&t, d, 10.0);
            let mut got: Vec<NodeId> = ada.heavy_hitters().to_vec();
            let mut want = expected.members.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want, "membership must equal Definition 2");
        }
    }

    #[test]
    fn stable_leaf_series_matches_exactly() {
        let t = tree();
        let x = t.find(&["a", "x"]).unwrap();
        let mut ada = Ada::new(cfg(5.0, 8)).unwrap();
        for i in 0..6 {
            ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 10.0 + i as f64)]));
        }
        let view = ada.view(x).unwrap();
        let vals: Vec<f64> = view.actual.iter().collect();
        assert_eq!(vals, vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0]);
        assert_eq!(view.latest_actual, 15.0);
    }

    #[test]
    fn split_moves_series_down_when_leaf_emerges() {
        let t = tree();
        let a = t.find(&["a"]).unwrap();
        let x = t.find(&["a", "x"]).unwrap();
        let mut ada = Ada::new(cfg(10.0, 8)).unwrap();
        // Phase 1: mass spread across a's children — only `a` is heavy.
        for _ in 0..4 {
            ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 6.0), (&["a", "y"], 6.0)]));
        }
        assert!(ada.is_heavy_hitter(a));
        assert!(!ada.is_heavy_hitter(x));
        // Phase 2: x spikes — membership must move to x, inheriting
        // series state from a.
        ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 20.0), (&["a", "y"], 1.0)]));
        assert!(ada.is_heavy_hitter(x));
        assert!(!ada.is_heavy_hitter(a), "a's residual (1.0) is below θ");
        let view = ada.view(x).unwrap();
        assert_eq!(view.latest_actual, 20.0);
        // x's inherited history is a scaled copy of a's 12s: positive and
        // bounded by the original.
        let older: Vec<f64> = view.actual.iter().collect();
        for v in &older[..older.len() - 1] {
            assert!(*v > 0.0 && *v <= 12.0, "inherited value {v}");
        }
    }

    #[test]
    fn merge_returns_series_up_when_leaf_cools() {
        let t = tree();
        let a = t.find(&["a"]).unwrap();
        let x = t.find(&["a", "x"]).unwrap();
        let mut ada = Ada::new(cfg(10.0, 8)).unwrap();
        // x is heavy for a while.
        for _ in 0..4 {
            ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 15.0), (&["a", "y"], 4.0)]));
        }
        assert!(ada.is_heavy_hitter(x));
        // x cools; the combined mass keeps `a` heavy.
        ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 6.0), (&["a", "y"], 6.0)]));
        assert!(!ada.is_heavy_hitter(x));
        assert!(ada.is_heavy_hitter(a));
        let view = ada.view(a).unwrap();
        // a's merged history = x's tracked 15s. The residual 4s of y
        // belonged to no heavy hitter and were never tracked — exactly
        // the approximation the reference-series add-on (§V-B5) repairs.
        let vals: Vec<f64> = view.actual.iter().collect();
        assert_eq!(*vals.last().unwrap(), 12.0);
        for v in &vals[..vals.len() - 1] {
            assert!((*v - 15.0).abs() < 1e-9, "merged history value {v}");
        }
    }

    #[test]
    fn deep_hidden_hitter_is_reached_by_cascading_splits() {
        // root → a → b → leaf: leaf becomes heavy while only root was a
        // member. Splits must cascade root → a → b → leaf.
        let mut t = Tree::new("root");
        let leaf = t.insert_path(&["a", "b", "leaf"]);
        let other = t.insert_path(&["c"]);
        let mut ada = Ada::new(cfg(10.0, 8)).unwrap();
        // Only diffuse mass: root is the sole member.
        let mut d = vec![0.0; t.len()];
        d[leaf.index()] = 6.0;
        d[other.index()] = 6.0;
        ada.push_timeunit(&t, &d);
        assert!(ada.is_heavy_hitter(t.root()));
        // The leaf spikes.
        let mut d = vec![0.0; t.len()];
        d[leaf.index()] = 25.0;
        d[other.index()] = 6.0;
        ada.push_timeunit(&t, &d);
        assert!(ada.is_heavy_hitter(leaf), "cascade must reach the leaf");
        assert!(!ada.is_heavy_hitter(t.root()), "root residual is 6 < θ");
        assert_eq!(ada.view(leaf).unwrap().latest_actual, 25.0);
    }

    #[test]
    fn root_rule_adds_and_removes_membership() {
        let t = tree();
        let mut ada = Ada::new(cfg(10.0, 8)).unwrap();
        // Diffuse mass → root member.
        ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 4.0), (&["b"], 7.0)]));
        assert!(ada.is_heavy_hitter(t.root()));
        // Everything quiet → root leaves.
        ada.push_timeunit(&t, &unit(&t, &[(&["b"], 2.0)]));
        assert!(!ada.is_heavy_hitter(t.root()));
        assert!(ada.heavy_hitters().is_empty());
    }

    #[test]
    fn with_history_reconstructs_exact_series() {
        let t = tree();
        let x = t.find(&["a", "x"]).unwrap();
        let history: Vec<Vec<f64>> =
            (0..6).map(|i| unit(&t, &[(&["a", "x"], 10.0 + i as f64)])).collect();
        let ada = Ada::with_history(cfg(5.0, 8), &t, &history).unwrap();
        let view = ada.view(x).unwrap();
        let vals: Vec<f64> = view.actual.iter().collect();
        assert_eq!(vals, vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0]);
        assert_eq!(ada.instances(), 6);
    }

    #[test]
    fn ada_agrees_with_sta_on_stationary_stream() {
        // When membership is stable, ADA's incremental series must equal
        // STA's reconstruction exactly.
        use crate::sta::Sta;
        let t = tree();
        let x = t.find(&["a", "x"]).unwrap();
        let mut ada = Ada::new(cfg(5.0, 8)).unwrap();
        let mut sta = Sta::new(cfg(5.0, 8)).unwrap();
        for i in 0..8 {
            let d = unit(&t, &[(&["a", "x"], 8.0 + (i % 3) as f64)]);
            ada.push_timeunit(&t, &d);
            sta.push_timeunit(&t, &d);
        }
        let ada_vals: Vec<f64> = ada.view(x).unwrap().actual.iter().collect();
        assert_eq!(ada_vals.as_slice(), sta.actual_series(x).unwrap());
        let (sa, sf) = sta.latest(x).unwrap();
        let v = ada.view(x).unwrap();
        assert_eq!(v.latest_actual, sa);
        assert!((v.latest_forecast - sf).abs() < 1e-9);
    }

    #[test]
    fn reference_series_corrects_split_bias() {
        // With h = 1 reference levels, a split onto a depth-1 node must
        // restore the exact series instead of the ratio approximation.
        let t = tree();
        let a = t.find(&["a"]).unwrap();
        let config = cfg(10.0, 16).with_ref_levels(1);
        let mut ada = Ada::new(config).unwrap();
        // Phase 1: diffuse mass — only root is a member; `a`'s true
        // aggregate history is 9, 9, ...
        for _ in 0..5 {
            ada.push_timeunit(
                &t,
                &unit(&t, &[(&["a", "x"], 5.0), (&["a", "y"], 4.0), (&["b"], 3.0)]),
            );
        }
        assert!(ada.is_heavy_hitter(t.root()));
        // Phase 2: `a` spikes (spread so no single child is heavy); the
        // root splits, and the reference series gives `a` its exact 9s
        // history (not a ratio of root's 12s).
        ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 7.0), (&["a", "y"], 6.0)]));
        assert!(ada.is_heavy_hitter(a));
        let vals: Vec<f64> = ada.view(a).unwrap().actual.iter().collect();
        for v in &vals[..vals.len() - 1] {
            assert!((*v - 9.0).abs() < 1e-9, "reference-corrected value {v}");
        }
        assert_eq!(*vals.last().unwrap(), 13.0);
    }

    #[test]
    fn series_lengths_stay_aligned_across_adaptations() {
        let t = tree();
        let mut ada = Ada::new(cfg(10.0, 4)).unwrap();
        // Keep flipping which node is heavy to force splits and merges.
        for i in 0..12 {
            let d = if i % 2 == 0 {
                unit(&t, &[(&["a", "x"], 20.0)])
            } else {
                unit(&t, &[(&["a", "x"], 4.0), (&["a", "y"], 4.0), (&["b"], 4.0)])
            };
            ada.push_timeunit(&t, &d);
            for &m in ada.heavy_hitters() {
                let v = ada.view(m).unwrap();
                assert_eq!(v.actual.len(), v.forecast.len());
                assert_eq!(v.actual.len(), 4.min(i + 1), "instance {i}");
            }
        }
    }

    #[test]
    fn memory_is_bounded_by_live_state() {
        let t = tree();
        let mut ada = Ada::new(cfg(5.0, 4)).unwrap();
        for _ in 0..20 {
            ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 9.0)]));
        }
        let r = ada.memory_report(&t);
        assert_eq!(r.history_cells, 0, "ADA keeps no raw history");
        // One heavy hitter, two series of ≤ 4 cells each.
        assert!(r.series_cells <= 8);
        assert_eq!(r.heavy_hitters, 1);
    }

    #[test]
    fn split_rules_produce_valid_series() {
        for rule in [
            SplitRule::Uniform,
            SplitRule::LastTimeUnit,
            SplitRule::LongTermHistory,
            SplitRule::Ewma { alpha: 0.4 },
        ] {
            let t = tree();
            let x = t.find(&["a", "x"]).unwrap();
            let config = cfg(10.0, 8).with_split_rule(rule);
            let mut ada = Ada::new(config).unwrap();
            for _ in 0..3 {
                ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 6.0), (&["a", "y"], 5.0)]));
            }
            ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 30.0)]));
            assert!(ada.is_heavy_hitter(x), "{rule}");
            let v = ada.view(x).unwrap();
            assert!(v.actual.iter().all(|x| x >= 0.0), "{rule}");
        }
    }

    #[test]
    fn interior_direct_counts_are_reconciled() {
        // A record stream that classifies at an *interior* category: the
        // node can stay heavy while every child is heavy too, a case the
        // paper's leaf-only choreography never produces. Membership must
        // still match Definition 2 exactly.
        let t = tree();
        let a = t.find(&["a"]).unwrap();
        let mut ada = Ada::new(cfg(10.0, 8)).unwrap();
        // Children both heavy AND interior direct weight heavy.
        let mut d = unit(&t, &[(&["a", "x"], 12.0), (&["a", "y"], 12.0)]);
        d[a.index()] = 15.0; // direct interior mass
        ada.push_timeunit(&t, &d);
        let x = t.find(&["a", "x"]).unwrap();
        let y = t.find(&["a", "y"]).unwrap();
        assert!(ada.is_heavy_hitter(x));
        assert!(ada.is_heavy_hitter(y));
        assert!(ada.is_heavy_hitter(a), "interior residual 15 ≥ θ");
        assert_eq!(ada.modified_weight(a), 15.0);
        // And the next unit still reconciles when the residual drops.
        let mut d = unit(&t, &[(&["a", "x"], 12.0)]);
        d[a.index()] = 3.0;
        ada.push_timeunit(&t, &d);
        assert!(!ada.is_heavy_hitter(a));
        assert!(ada.is_heavy_hitter(x));
    }

    #[test]
    fn next_forecast_tracks_model() {
        let t = tree();
        let x = t.find(&["a", "x"]).unwrap();
        let mut ada = Ada::new(cfg(5.0, 8)).unwrap();
        for _ in 0..4 {
            ada.push_timeunit(&t, &unit(&t, &[(&["a", "x"], 10.0)]));
        }
        let f = ada.next_forecast(x).unwrap();
        assert!(f > 5.0 && f <= 10.0, "forecast {f} approaches the stable 10");
        assert!(ada.next_forecast(t.root()).is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(matches!(Ada::new(HhhConfig::new(-1.0, 8)), Err(HhhError::InvalidConfig(_))));
    }

    #[test]
    fn extract_adopt_matches_native_routing() {
        // Two isolated subtrees tracked together, then `b` migrates to a
        // tracker that only ever saw `c`. After the transplant, both
        // trackers must behave exactly as if the routing had been
        // (a)/(b, c) from the start.
        let config = cfg(10.0, 8).with_ref_levels(1).with_root_isolation(true);
        let mut src_tree = Tree::new("root");
        src_tree.insert_path(&["a", "x"]);
        src_tree.insert_path(&["b", "y"]);
        let mut dst_tree = Tree::new("root");
        dst_tree.insert_path(&["c", "z"]);
        // Native reference: b and c together from the start.
        let mut native_tree = Tree::new("root");
        native_tree.insert_path(&["b", "y"]);
        native_tree.insert_path(&["c", "z"]);

        let mut src = Ada::new(config.clone()).unwrap();
        let mut dst = Ada::new(config.clone()).unwrap();
        let mut native = Ada::new(config).unwrap();
        let feed = |tree: &Tree, ada: &mut Ada, pairs: &[(&[&str], f64)]| {
            let mut d = vec![0.0; tree.len()];
            for (path, w) in pairs {
                if let Some(n) = tree.find(path) {
                    d[n.index()] = *w;
                }
            }
            ada.push_timeunit(tree, &d);
        };
        for i in 0..6 {
            let by = 12.0 + i as f64;
            feed(&src_tree, &mut src, &[(&["a", "x"], 20.0), (&["b", "y"], by)]);
            feed(&dst_tree, &mut dst, &[(&["c", "z"], 15.0)]);
            feed(&native_tree, &mut native, &[(&["b", "y"], by), (&["c", "z"], 15.0)]);
        }

        let surgery = src_tree.extract_top_subtrees(|l| l == "b");
        let slice = src.extract_nodes(&src_tree, &surgery);
        let ids = dst_tree.adopt_top_subtrees(&surgery.moved);
        dst.adopt_nodes(&dst_tree, &ids, slice);

        // Membership and series carried over verbatim.
        let by_dst = dst_tree.find(&["b", "y"]).unwrap();
        let by_native = native_tree.find(&["b", "y"]).unwrap();
        assert!(dst.is_heavy_hitter(by_dst));
        let got: Vec<f64> = dst.view(by_dst).unwrap().actual.iter().collect();
        let want: Vec<f64> = native.view(by_native).unwrap().actual.iter().collect();
        assert_eq!(got, want);
        // The source no longer tracks b.
        assert!(src_tree.find(&["b"]).is_none());
        assert!(src.heavy_hitters().iter().all(|&n| src_tree.find(&["a", "x"]) == Some(n)));

        // Future units evolve identically on both sides of the move.
        for i in 0..6 {
            let by = if i % 2 == 0 { 25.0 } else { 3.0 };
            feed(&src_tree, &mut src, &[(&["a", "x"], 20.0)]);
            feed(&dst_tree, &mut dst, &[(&["b", "y"], by), (&["c", "z"], 15.0)]);
            feed(&native_tree, &mut native, &[(&["b", "y"], by), (&["c", "z"], 15.0)]);
            for (path, tree, other_tree) in
                [(["b", "y"], &dst_tree, &native_tree), (["c", "z"], &dst_tree, &native_tree)]
            {
                let n = tree.find(&path).unwrap();
                let m = other_tree.find(&path).unwrap();
                assert_eq!(dst.is_heavy_hitter(n), native.is_heavy_hitter(m), "unit {i}");
                assert_eq!(dst.modified_weight(n), native.modified_weight(m), "unit {i}");
                match (dst.view(n), native.view(m)) {
                    (Some(a), Some(b)) => {
                        let av: Vec<f64> = a.actual.iter().collect();
                        let bv: Vec<f64> = b.actual.iter().collect();
                        assert_eq!(av, bv, "unit {i}");
                        let af: Vec<f64> = a.forecast.iter().collect();
                        let bf: Vec<f64> = b.forecast.iter().collect();
                        assert_eq!(af, bf, "unit {i}");
                    }
                    (None, None) => {}
                    (a, b) => panic!("view divergence at unit {i}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
