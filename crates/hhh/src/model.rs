use serde::{Deserialize, Serialize};

use tiresias_timeseries::{
    Ewma, Forecaster, HoltWinters, LinearForecaster, MultiSeasonalHoltWinters, SeasonalFactor,
    TimeSeriesError,
};

/// Configuration of the per-heavy-hitter forecasting model.
///
/// Tiresias uses EWMA for the split-error analysis and the additive
/// Holt-Winters model (single- or multi-seasonal) for the operational
/// datasets (§VI–§VII). All three are linear in the observations, which
/// is what allows ADA's split/merge to adapt forecaster state directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Exponentially weighted moving average with rate α.
    Ewma {
        /// Smoothing rate in `(0, 1]`.
        alpha: f64,
    },
    /// Additive Holt-Winters with one seasonal period.
    HoltWinters {
        /// Level smoothing rate α.
        alpha: f64,
        /// Trend smoothing rate β.
        beta: f64,
        /// Seasonal smoothing rate γ.
        gamma: f64,
        /// Seasonal period υ in timeunits.
        season: usize,
    },
    /// Additive Holt-Winters with several linearly combined seasonal
    /// factors (the paper's `S = ξ·S_day + (1−ξ)·S_week`).
    MultiSeasonal {
        /// Level smoothing rate α.
        alpha: f64,
        /// Trend smoothing rate β.
        beta: f64,
        /// Seasonal smoothing rate γ.
        gamma: f64,
        /// The seasonal factors (period, weight).
        factors: Vec<SeasonalFactor>,
    },
}

impl Default for ModelSpec {
    /// A daily-season Holt-Winters model for 15-minute timeunits
    /// (υ = 96), the paper's SCD configuration.
    fn default() -> Self {
        ModelSpec::HoltWinters { alpha: 0.5, beta: 0.05, gamma: 0.3, season: 96 }
    }
}

impl ModelSpec {
    /// The minimum history length needed for a clean initialisation
    /// (2υ for seasonal models; shorter histories fall back to a linear
    /// degenerate start).
    pub fn preferred_history(&self) -> usize {
        match self {
            ModelSpec::Ewma { .. } => 1,
            ModelSpec::HoltWinters { season, .. } => 2 * season,
            ModelSpec::MultiSeasonal { factors, .. } => {
                2 * factors.iter().map(|f| f.period).max().unwrap_or(1)
            }
        }
    }
}

/// A forecasting model instance bound to one heavy hitter.
///
/// This is an enum (rather than a trait object) so ADA can `clone`,
/// [`Model::scale`] and [`Model::merge`] node state without dynamic
/// downcasts — the linear operations must pair identical variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    /// EWMA instance.
    Ewma(Ewma),
    /// Single-season Holt-Winters instance.
    HoltWinters(HoltWinters),
    /// Multi-seasonal Holt-Winters instance.
    MultiSeasonal(MultiSeasonalHoltWinters),
}

impl Model {
    /// Builds a model from a history of observations and returns it
    /// together with the recorded one-step forecasts (aligned with
    /// `history`: `forecasts[i]` was made before seeing `history[i]`).
    ///
    /// `start_unit` is the **global** timeunit index of `history[0]`.
    /// Seasonal phases are aligned to it, so models created at different
    /// times (but observing every subsequent timeunit) stay phase-
    /// compatible and can later be merged — a requirement of ADA's
    /// adaptation machinery.
    ///
    /// The start state is deliberately degenerate but *linear* in the
    /// history: level = mean, trend = 0, zero seasonal components, then
    /// every sample is replayed. Linearity of the construction is what
    /// keeps Lemma 2 (and thus split/merge correctness) valid for every
    /// node state.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] for invalid spec
    /// parameters.
    pub fn replay(
        spec: &ModelSpec,
        history: &[f64],
        start_unit: u64,
    ) -> Result<(Model, Vec<f64>), TimeSeriesError> {
        let mut model = Model::cold(spec, history, start_unit)?;
        let mut forecasts = Vec::with_capacity(history.len());
        for &v in history {
            forecasts.push(model.forecast());
            model.observe(v);
        }
        Ok((model, forecasts))
    }

    /// Builds the all-zero start state (before any replay), phase-aligned
    /// so the next observation is global unit `start_unit`.
    ///
    /// The zero seed makes replay a *pure function of the history*: a
    /// model kept incrementally by ADA since its creation and a model
    /// replayed by STA over the same reconstructed history end up in the
    /// identical state, which is what lets STA serve as ADA's exact
    /// ground truth.
    fn cold(spec: &ModelSpec, _history: &[f64], start_unit: u64) -> Result<Model, TimeSeriesError> {
        Ok(match spec {
            ModelSpec::Ewma { alpha } => Model::Ewma(Ewma::with_initial(*alpha, 0.0)?),
            ModelSpec::HoltWinters { alpha, beta, gamma, season } => {
                let mut hw = HoltWinters::new(*alpha, *beta, *gamma, 0.0, 0.0, vec![0.0; *season])?;
                hw.set_phase((start_unit % *season as u64) as usize)?;
                Model::HoltWinters(hw)
            }
            ModelSpec::MultiSeasonal { alpha, beta, gamma, factors } => {
                let mut hw =
                    MultiSeasonalHoltWinters::new(*alpha, *beta, *gamma, factors, 0.0, 0.0)?;
                // Reduce the global counter by the product of the periods
                // so it fits usize even on 32-bit targets; each factor
                // takes it modulo its own period anyway.
                let cycle: u64 = factors.iter().map(|f| f.period as u64).product::<u64>().max(1);
                hw.set_phases((start_unit % cycle) as usize);
                Model::MultiSeasonal(hw)
            }
        })
    }

    /// One-step-ahead forecast.
    pub fn forecast(&self) -> f64 {
        match self {
            Model::Ewma(m) => m.forecast(),
            Model::HoltWinters(m) => m.forecast(),
            Model::MultiSeasonal(m) => m.forecast(),
        }
    }

    /// Advances the model with the observed value.
    pub fn observe(&mut self, actual: f64) {
        match self {
            Model::Ewma(m) => m.observe(actual),
            Model::HoltWinters(m) => m.observe(actual),
            Model::MultiSeasonal(m) => m.observe(actual),
        }
    }

    /// Scales the model state by `factor` (ADA `SPLIT`).
    pub fn scale(&mut self, factor: f64) {
        match self {
            Model::Ewma(m) => m.scale(factor),
            Model::HoltWinters(m) => m.scale(factor),
            Model::MultiSeasonal(m) => m.scale(factor),
        }
    }

    /// Adds `other`'s state (ADA `MERGE`).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::IncompatibleForecasters`] if the models
    /// are different variants or configured differently.
    pub fn merge(&mut self, other: &Model) -> Result<(), TimeSeriesError> {
        match (self, other) {
            (Model::Ewma(a), Model::Ewma(b)) => a.merge(b),
            (Model::HoltWinters(a), Model::HoltWinters(b)) => a.merge(b),
            (Model::MultiSeasonal(a), Model::MultiSeasonal(b)) => a.merge(b),
            _ => Err(TimeSeriesError::IncompatibleForecasters("model variants differ".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw_spec(season: usize) -> ModelSpec {
        ModelSpec::HoltWinters { alpha: 0.4, beta: 0.1, gamma: 0.3, season }
    }

    #[test]
    fn replay_produces_aligned_forecasts() {
        let hist = [5.0, 6.0, 7.0, 8.0];
        let (model, forecasts) = Model::replay(&ModelSpec::Ewma { alpha: 0.5 }, &hist, 0).unwrap();
        assert_eq!(forecasts.len(), hist.len());
        // The model's next forecast continues past the history.
        assert!(model.forecast() > 5.0);
    }

    #[test]
    fn zero_history_yields_zero_state() {
        let zeros = vec![0.0; 16];
        let (model, forecasts) = Model::replay(&hw_spec(4), &zeros, 0).unwrap();
        assert_eq!(model.forecast(), 0.0);
        assert!(forecasts.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn empty_history_is_valid() {
        let (model, forecasts) = Model::replay(&hw_spec(4), &[], 0).unwrap();
        assert!(forecasts.is_empty());
        assert_eq!(model.forecast(), 0.0);
    }

    #[test]
    fn replay_is_linear_across_histories() {
        // replay(X) + replay(Y) == replay(X+Y) in both state and
        // forecasts — the property split/merge depends on.
        let xs: Vec<f64> = (0..20).map(|t| 3.0 + (t % 4) as f64).collect();
        let ys: Vec<f64> = (0..20).map(|t| 1.0 + (t % 4) as f64 * 0.5).collect();
        let sum: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
        let spec = hw_spec(4);
        let (mut mx, fx) = Model::replay(&spec, &xs, 0).unwrap();
        let (my, fy) = Model::replay(&spec, &ys, 0).unwrap();
        let (ms, fs) = Model::replay(&spec, &sum, 0).unwrap();
        for i in 0..fx.len() {
            assert!((fx[i] + fy[i] - fs[i]).abs() < 1e-9, "forecast {i}");
        }
        mx.merge(&my).unwrap();
        assert!((mx.forecast() - ms.forecast()).abs() < 1e-9);
    }

    #[test]
    fn scale_matches_scaled_history() {
        let xs: Vec<f64> = (0..20).map(|t| 2.0 + (t % 5) as f64).collect();
        let scaled: Vec<f64> = xs.iter().map(|x| x * 0.3).collect();
        let spec = hw_spec(5);
        let (mut mx, _) = Model::replay(&spec, &xs, 0).unwrap();
        let (ms, _) = Model::replay(&spec, &scaled, 0).unwrap();
        mx.scale(0.3);
        assert!((mx.forecast() - ms.forecast()).abs() < 1e-9);
    }

    #[test]
    fn merge_rejects_variant_mismatch() {
        let (mut a, _) = Model::replay(&ModelSpec::Ewma { alpha: 0.5 }, &[1.0], 0).unwrap();
        let (b, _) = Model::replay(&hw_spec(2), &[1.0, 1.0], 0).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn multi_seasonal_spec_builds() {
        let spec = ModelSpec::MultiSeasonal {
            alpha: 0.4,
            beta: 0.05,
            gamma: 0.3,
            factors: vec![SeasonalFactor::new(4, 0.76), SeasonalFactor::new(8, 0.24)],
        };
        assert_eq!(spec.preferred_history(), 16);
        let hist: Vec<f64> = (0..24).map(|t| (t % 4) as f64).collect();
        let (m, f) = Model::replay(&spec, &hist, 0).unwrap();
        assert_eq!(f.len(), 24);
        let _ = m.forecast();
    }

    #[test]
    fn preferred_history_lengths() {
        assert_eq!(ModelSpec::Ewma { alpha: 0.5 }.preferred_history(), 1);
        assert_eq!(hw_spec(96).preferred_history(), 192);
    }
}
