use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Cumulative wall-clock time spent in each processing stage, mirroring
/// the stage breakdown of the paper's Table III.
///
/// `reading_traces` is filled by the caller (trace parsing happens
/// outside the trackers); the trackers themselves account
/// `updating_hierarchies`, `creating_time_series` and (in the detector)
/// `detecting_anomalies`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Time spent parsing/ingesting raw records.
    pub reading_traces: Duration,
    /// Time spent updating node weights and the heavy hitter set.
    pub updating_hierarchies: Duration,
    /// Time spent constructing or adapting per-heavy-hitter time series.
    pub creating_time_series: Duration,
    /// Time spent applying the anomaly decision rule.
    pub detecting_anomalies: Duration,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.reading_traces
            + self.updating_hierarchies
            + self.creating_time_series
            + self.detecting_anomalies
    }

    /// Adds another timing record stage-wise.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.reading_traces += other.reading_traces;
        self.updating_hierarchies += other.updating_hierarchies;
        self.creating_time_series += other.creating_time_series;
        self.detecting_anomalies += other.detecting_anomalies;
    }

    /// The share of `stage` in the total, in percent (0 when total is
    /// zero).
    pub fn percent(&self, stage: Duration) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            stage.as_secs_f64() / total * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_percent() {
        let t = StageTimings {
            reading_traces: Duration::from_millis(10),
            updating_hierarchies: Duration::from_millis(20),
            creating_time_series: Duration::from_millis(60),
            detecting_anomalies: Duration::from_millis(10),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.percent(t.creating_time_series) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_adds_stagewise() {
        let mut a = StageTimings::default();
        let b =
            StageTimings { reading_traces: Duration::from_millis(5), ..StageTimings::default() };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.reading_traces, Duration::from_millis(10));
    }

    #[test]
    fn zero_total_percent_is_zero() {
        let t = StageTimings::default();
        assert_eq!(t.percent(Duration::from_millis(5)), 0.0);
    }
}
