//! Hierarchical heavy hitter detection — the algorithmic core of Tiresias
//! (§III and §V of the paper).
//!
//! Given a stream of operational records classified against an additive
//! hierarchy, Tiresias tracks the set of **Succinct Hierarchical Heavy
//! Hitters** (SHHH, Definition 2): nodes whose *modified weight* — the
//! count remaining after discounting descendants that are themselves
//! heavy hitters — reaches a threshold θ. Each heavy hitter carries a
//! bounded time series of its modified weights plus a forecasting model;
//! anomalies are spikes of the observed count over the forecast.
//!
//! Two maintenance algorithms are provided:
//!
//! * [`Sta`] — the strawman (Fig. 4): keep all ℓ per-timeunit count
//!   vectors and rebuild every heavy hitter's time series from scratch at
//!   each time instance. Exact, but Θ(ℓ·|tree|) per instance.
//! * [`Ada`] — the adaptive scheme (Fig. 5–8): keep a single tree whose
//!   heavy hitter nodes own their series and forecaster state, and move
//!   that state through the hierarchy with `SPLIT` (scale down to
//!   children, §V-B4) and `MERGE` (sum into the parent) operations as the
//!   heavy hitter set drifts. Θ(|tree|) per instance and Θ(1) amortised
//!   per series update, at the cost of small, exponentially decaying
//!   series error (Fig. 9) — reducible further with **reference time
//!   series** kept for the top `h` levels (§V-B5).
//!
//! The heavy-hitter membership produced by [`Ada`] is always exactly the
//! Definition-2 set (the paper's Lemma 1); only the *series contents* are
//! approximate after splits.
//!
//! # Example
//!
//! ```
//! use tiresias_hierarchy::Tree;
//! use tiresias_hhh::{compute_shhh, ShhhResult};
//!
//! let mut tree = Tree::new("All");
//! let a = tree.insert_path(&["TV", "No Service"]);
//! let b = tree.insert_path(&["TV", "Pixelation"]);
//! let mut direct = vec![0.0; tree.len()];
//! direct[a.index()] = 30.0; // heavy leaf
//! direct[b.index()] = 4.0;
//! let ShhhResult { members, modified, .. } = compute_shhh(&tree, &direct, 10.0);
//! let tv = tree.find(&["TV"]).unwrap();
//! assert!(members.contains(&a));
//! // TV's modified weight discounts the heavy child: only 4 remains.
//! assert_eq!(modified[tv.index()], 4.0);
//! assert!(!members.contains(&tv));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ada;
mod config;
mod error;
mod memory;
mod model;
mod multiscale;
mod shhh;
mod split_rule;
mod sta;
mod surgery;
mod timings;

pub use ada::{Ada, AdaSlice, HeavyHitterView};
pub use config::HhhConfig;
pub use error::HhhError;
pub use memory::MemoryReport;
pub use model::{Model, ModelSpec};
pub use multiscale::{MultiScaleAda, MultiScaleConfig};
pub use shhh::{
    aggregate_weights, aggregate_weights_into, compute_shhh, compute_shhh_into, series_values,
    ShhhResult,
};
pub use split_rule::{SplitRule, SplitStats, StatRow};
pub use sta::{Sta, StaSlice};
pub use timings::StageTimings;
