use serde::{Deserialize, Serialize};

use crate::model::ModelSpec;
use crate::split_rule::SplitRule;

/// Configuration shared by the [`crate::Sta`] and [`crate::Ada`] heavy
/// hitter trackers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HhhConfig {
    /// Heavy hitter threshold θ (Definition 1/2). The paper chooses it
    /// "sufficiently small" so that every anomaly candidate is covered —
    /// around 125 heavy hitters at CCD peak.
    pub theta: f64,
    /// Time-series window length ℓ in timeunits (the paper's typical
    /// value is 8 064: a 12-week window of 15-minute units).
    pub ell: usize,
    /// Forecasting model bound to each heavy hitter.
    pub model: ModelSpec,
    /// Split-ratio heuristic for ADA's `SPLIT` (§V-B4).
    pub split_rule: SplitRule,
    /// Number of top hierarchy levels `h` (excluding the root) that keep
    /// reference time series (§V-B5). `0` disables the add-on.
    pub ref_levels: usize,
    /// Smoothing rate of the EWMA split-rule statistic (only used when
    /// `split_rule` is [`SplitRule::Ewma`]; kept here so the statistic is
    /// maintained consistently).
    pub stat_ewma_alpha: f64,
    /// Keeps the root's time series out of `SPLIT` inheritance: a
    /// first-level node joining the heavy hitter set seeds from its
    /// reference series when one exists and from zeros otherwise,
    /// never from a scaled copy of the root's series.
    ///
    /// The root is the only node whose Definition-2 weight couples
    /// *sibling* top-level subtrees, so with this flag every depth ≥ 1
    /// series is a pure function of that node's own subtree counts.
    /// That is the property the sharded engine relies on for
    /// shard-count-invariant output; see `tiresias-core`'s
    /// `ShardedTiresias`. Off by default (the paper's SPLIT applies at
    /// every level, including the root).
    pub root_isolation: bool,
}

impl HhhConfig {
    /// Creates a configuration with the given threshold and window,
    /// defaulting the rest (daily Holt-Winters, `Long-Term-History`
    /// splits, `h = 2` reference levels).
    pub fn new(theta: f64, ell: usize) -> Self {
        HhhConfig {
            theta,
            ell,
            model: ModelSpec::default(),
            split_rule: SplitRule::default(),
            ref_levels: 2,
            stat_ewma_alpha: 0.4,
            root_isolation: false,
        }
    }

    /// Sets the forecasting model.
    #[must_use]
    pub fn with_model(mut self, model: ModelSpec) -> Self {
        self.model = model;
        self
    }

    /// Sets the split rule.
    #[must_use]
    pub fn with_split_rule(mut self, rule: SplitRule) -> Self {
        self.split_rule = rule;
        if let SplitRule::Ewma { alpha } = rule {
            self.stat_ewma_alpha = alpha;
        }
        self
    }

    /// Sets the number of reference levels `h`.
    #[must_use]
    pub fn with_ref_levels(mut self, h: usize) -> Self {
        self.ref_levels = h;
        self
    }

    /// Enables root isolation (see [`HhhConfig::root_isolation`]).
    #[must_use]
    pub fn with_root_isolation(mut self, enabled: bool) -> Self {
        self.root_isolation = enabled;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.theta.is_nan() || self.theta <= 0.0 {
            return Err(format!("theta must be positive, got {}", self.theta));
        }
        if self.ell == 0 {
            return Err("ell (window length) must be positive".into());
        }
        if !(self.stat_ewma_alpha > 0.0 && self.stat_ewma_alpha <= 1.0) {
            return Err(format!("stat_ewma_alpha must be in (0, 1], got {}", self.stat_ewma_alpha));
        }
        Ok(())
    }
}

impl Default for HhhConfig {
    fn default() -> Self {
        HhhConfig::new(10.0, 8064)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(HhhConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_fields_are_reported() {
        assert!(HhhConfig::new(0.0, 10).validate().is_err());
        assert!(HhhConfig::new(-1.0, 10).validate().is_err());
        assert!(HhhConfig::new(5.0, 0).validate().is_err());
        let mut c = HhhConfig::new(5.0, 10);
        c.stat_ewma_alpha = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ewma_split_rule_syncs_stat_alpha() {
        let c = HhhConfig::new(5.0, 10).with_split_rule(SplitRule::Ewma { alpha: 0.8 });
        assert_eq!(c.stat_ewma_alpha, 0.8);
    }
}
