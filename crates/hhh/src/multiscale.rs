use serde::{Deserialize, Serialize};

use tiresias_hierarchy::Tree;

use crate::ada::Ada;
use crate::config::HhhConfig;
use crate::error::HhhError;

/// Multi-time-scale heavy hitter tracking (§V-B6 of the paper).
///
/// The paper generalises ADA to a vector of η geometric time scales
/// `Δ, λΔ, λ²Δ, …` so that any configuration where the timeunit size Δ
/// is a multiple of the window shift ς reduces to the base algorithm:
/// run the finest scale at ς and read detections from the scale whose
/// unit equals Δ.
///
/// `MultiScaleAda` drives one [`Ada`] tracker per scale. A base-scale
/// timeunit is pushed to scale 0 on every call; scale `i` receives the
/// sum of the last λ units of scale `i−1` every λ pushes — the same
/// cascade as the paper's `UPDATE_TS`, applied to whole count vectors.
/// Total work per base unit stays amortised Θ(base cost): the cascade
/// touches scale `i` only every `λ^i` units.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::Tree;
/// use tiresias_hhh::{HhhConfig, ModelSpec, MultiScaleAda};
///
/// let mut tree = Tree::new("All");
/// let leaf = tree.insert_path(&["TV"]);
/// let cfg = HhhConfig::new(5.0, 16).with_model(ModelSpec::Ewma { alpha: 0.5 });
/// // ς = base unit; Δ = 4ς (λ = 4, η = 2).
/// let mut ms = MultiScaleAda::new(cfg, 4, 2)?;
/// for _ in 0..8 {
///     let mut direct = vec![0.0; tree.len()];
///     direct[leaf.index()] = 2.0; // light per ς-unit…
///     ms.push_timeunit(&tree, &direct);
/// }
/// // …but heavy per Δ-unit: the coarse scale sees 8 per unit.
/// assert!(!ms.scale(0).is_heavy_hitter(leaf));
/// assert!(ms.scale(1).is_heavy_hitter(leaf));
/// # Ok::<(), tiresias_hhh::HhhError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiScaleAda {
    lambda: usize,
    trackers: Vec<Ada>,
    /// Per-scale accumulation buffer (sums of the current λ-block) and
    /// how many sub-units it holds.
    pending: Vec<(Vec<f64>, usize)>,
    base_units: u64,
}

/// Serializable snapshot of the per-scale configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiScaleConfig {
    /// Geometric ratio λ between consecutive scales.
    pub lambda: usize,
    /// Number of scales η.
    pub eta: usize,
}

impl MultiScaleAda {
    /// Creates a tracker with `eta` scales at geometric ratio `lambda`.
    /// Every scale uses the same `config`; the heavy hitter threshold θ
    /// applies per scale (a node heavy per hour may not be heavy per 15
    /// minutes, exactly the point of multiple scales).
    ///
    /// # Errors
    ///
    /// Returns [`HhhError::InvalidConfig`] if `lambda < 2`, `eta == 0`,
    /// or the base configuration fails validation.
    pub fn new(config: HhhConfig, lambda: usize, eta: usize) -> Result<Self, HhhError> {
        if lambda < 2 {
            return Err(HhhError::InvalidConfig(format!(
                "lambda must be at least 2, got {lambda}"
            )));
        }
        if eta == 0 {
            return Err(HhhError::InvalidConfig("eta must be positive".into()));
        }
        let trackers = (0..eta).map(|_| Ada::new(config.clone())).collect::<Result<Vec<_>, _>>()?;
        Ok(MultiScaleAda { lambda, trackers, pending: vec![(Vec::new(), 0); eta], base_units: 0 })
    }

    /// Geometric ratio λ.
    pub fn lambda(&self) -> usize {
        self.lambda
    }

    /// Number of scales η.
    pub fn scale_count(&self) -> usize {
        self.trackers.len()
    }

    /// The tracker at scale `i` (0 = finest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= eta`.
    pub fn scale(&self, i: usize) -> &Ada {
        &self.trackers[i]
    }

    /// Base-scale timeunits processed.
    pub fn base_units(&self) -> u64 {
        self.base_units
    }

    /// Pushes one finest-scale timeunit, cascading aggregated units to
    /// coarser scales as their λ-blocks complete.
    ///
    /// # Panics
    ///
    /// Panics if `direct.len() < tree.len()`.
    pub fn push_timeunit(&mut self, tree: &Tree, direct: &[f64]) {
        assert!(direct.len() >= tree.len(), "direct counts must cover the tree");
        self.push_at(tree, direct.to_vec(), 0);
        self.base_units += 1;
    }

    fn push_at(&mut self, tree: &Tree, direct: Vec<f64>, i: usize) {
        self.trackers[i].push_timeunit(tree, &direct);
        if i + 1 >= self.trackers.len() {
            return;
        }
        let (acc, filled) = &mut self.pending[i];
        if acc.len() < direct.len() {
            acc.resize(direct.len(), 0.0);
        }
        for (a, v) in acc.iter_mut().zip(direct.iter()) {
            *a += *v;
        }
        *filled += 1;
        if *filled == self.lambda {
            let coarse = std::mem::take(acc);
            *filled = 0;
            self.push_at(tree, coarse, i + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    fn cfg(theta: f64) -> HhhConfig {
        HhhConfig::new(theta, 32).with_model(ModelSpec::Ewma { alpha: 0.5 })
    }

    fn tree() -> (Tree, tiresias_hierarchy::NodeId) {
        let mut t = Tree::new("r");
        let leaf = t.insert_path(&["a", "x"]);
        (t, leaf)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(MultiScaleAda::new(cfg(5.0), 1, 2).is_err());
        assert!(MultiScaleAda::new(cfg(5.0), 2, 0).is_err());
        assert!(MultiScaleAda::new(HhhConfig::new(0.0, 8), 2, 2).is_err());
    }

    #[test]
    fn coarse_scale_sees_lambda_aggregates() {
        let (t, leaf) = tree();
        let mut ms = MultiScaleAda::new(cfg(5.0), 3, 2).unwrap();
        for i in 0..9u64 {
            let mut d = vec![0.0; t.len()];
            d[leaf.index()] = (i + 1) as f64;
            ms.push_timeunit(&t, &d);
        }
        // Scale 1 saw three units: 1+2+3=6, 4+5+6=15, 7+8+9=24.
        assert_eq!(ms.scale(1).instances(), 3);
        let view = ms.scale(1).view(leaf).unwrap();
        let vals: Vec<f64> = view.actual.iter().collect();
        assert_eq!(vals, vec![6.0, 15.0, 24.0]);
    }

    #[test]
    fn slow_burn_is_visible_only_at_the_coarse_scale() {
        let (t, leaf) = tree();
        let mut ms = MultiScaleAda::new(cfg(10.0), 4, 2).unwrap();
        for _ in 0..16 {
            let mut d = vec![0.0; t.len()];
            d[leaf.index()] = 4.0; // below θ per base unit
            ms.push_timeunit(&t, &d);
        }
        assert!(!ms.scale(0).is_heavy_hitter(leaf));
        assert!(ms.scale(1).is_heavy_hitter(leaf), "16 per coarse unit ≥ θ");
    }

    #[test]
    fn cascade_cost_is_amortised() {
        let (t, leaf) = tree();
        let mut ms = MultiScaleAda::new(cfg(5.0), 2, 4).unwrap();
        let n = 64u64;
        for _ in 0..n {
            let mut d = vec![0.0; t.len()];
            d[leaf.index()] = 1.0;
            ms.push_timeunit(&t, &d);
        }
        let total: u64 = (0..4).map(|i| ms.scale(i).instances()).sum();
        assert!(total <= 2 * n, "Σ instances {total} must stay ≤ 2·{n}");
        assert_eq!(ms.base_units(), n);
    }

    #[test]
    fn partial_blocks_stay_pending() {
        let (t, leaf) = tree();
        let mut ms = MultiScaleAda::new(cfg(5.0), 4, 2).unwrap();
        for _ in 0..6 {
            let mut d = vec![0.0; t.len()];
            d[leaf.index()] = 1.0;
            ms.push_timeunit(&t, &d);
        }
        // 6 = one full block of 4 + 2 pending.
        assert_eq!(ms.scale(1).instances(), 1);
    }

    #[test]
    fn tree_growth_mid_block_is_handled() {
        let (mut t, leaf) = tree();
        let mut ms = MultiScaleAda::new(cfg(5.0), 2, 2).unwrap();
        let mut d = vec![0.0; t.len()];
        d[leaf.index()] = 3.0;
        ms.push_timeunit(&t, &d);
        let newcomer = t.insert_path(&["b", "y"]);
        let mut d = vec![0.0; t.len()];
        d[newcomer.index()] = 9.0;
        ms.push_timeunit(&t, &d);
        // The coarse unit contains both, padded consistently.
        assert_eq!(ms.scale(1).instances(), 1);
        assert_eq!(ms.scale(1).aggregate_weight(t.root()), 12.0);
    }
}
