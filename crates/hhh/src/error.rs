use std::error::Error;
use std::fmt;

use tiresias_timeseries::TimeSeriesError;

/// Errors produced by heavy hitter tracker construction and operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HhhError {
    /// The [`crate::HhhConfig`] failed validation.
    InvalidConfig(String),
    /// A forecasting-model operation failed.
    Model(TimeSeriesError),
}

impl fmt::Display for HhhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HhhError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            HhhError::Model(e) => write!(f, "forecasting model error: {e}"),
        }
    }
}

impl Error for HhhError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HhhError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TimeSeriesError> for HhhError {
    fn from(e: TimeSeriesError) -> Self {
        HhhError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_with_source() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<HhhError>();
        let e = HhhError::from(TimeSeriesError::InvalidParameter("x".into()));
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
    }
}
