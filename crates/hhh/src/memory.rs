use serde::{Deserialize, Serialize};

/// Memory accounting for a heavy hitter tracker, in abstract *cells*
/// (one cell = one stored `f64` sample or one node record).
///
/// The paper's Table IV reports **normalized memory cost** = total memory
/// / average number of tree nodes / per-node cost. Counting cells instead
/// of bytes makes the comparison hardware-independent while preserving
/// the ratios the table is about (ADA ≈ 36–43 % of STA).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Nodes of the (single, shared) classification tree.
    pub tree_nodes: usize,
    /// Stored per-timeunit count cells (STA's ℓ history vectors; zero
    /// for ADA, which keeps no raw history).
    pub history_cells: usize,
    /// Series cells owned by live heavy hitters (actual + forecast).
    pub series_cells: usize,
    /// Reference time-series cells (ADA's §V-B5 add-on).
    pub reference_cells: usize,
    /// Number of live heavy hitters.
    pub heavy_hitters: usize,
}

impl MemoryReport {
    /// Total cells.
    pub fn total_cells(&self) -> usize {
        self.tree_nodes + self.history_cells + self.series_cells + self.reference_cells
    }

    /// The paper's normalized memory cost: total cells divided by the
    /// tree size (per-node cost is already 1 cell by construction).
    pub fn normalized(&self) -> f64 {
        if self.tree_nodes == 0 {
            0.0
        } else {
            self.total_cells() as f64 / self.tree_nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_normalization() {
        let r = MemoryReport {
            tree_nodes: 100,
            history_cells: 500,
            series_cells: 300,
            reference_cells: 100,
            heavy_hitters: 7,
        };
        assert_eq!(r.total_cells(), 1000);
        assert!((r.normalized() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = MemoryReport::default();
        assert_eq!(r.total_cells(), 0);
        assert_eq!(r.normalized(), 0.0);
    }
}
