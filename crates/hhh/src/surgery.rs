//! Shared helpers for moving per-node tracker state between shard
//! detectors when a top-level subtree is rebalanced (see
//! [`crate::Ada::extract_nodes`] and [`crate::Sta::extract_nodes`]).

use tiresias_hierarchy::NodeId;

/// Remaps a per-node vector through a tree compaction: entry `i` moves
/// to `old_to_new[i]`, entries mapped to `None` are dropped, and the
/// vector shrinks to the surviving count. Indices past the current
/// length are treated as default values (per-node vectors grow lazily,
/// so they may lag a tree that gained nodes since the last timeunit).
pub(crate) fn compact_vec<T: Default>(v: &mut Vec<T>, old_to_new: &[Option<NodeId>]) {
    let new_len = old_to_new.iter().flatten().count();
    let mut old = std::mem::take(v);
    let mut out = Vec::with_capacity(new_len);
    out.resize_with(new_len, T::default);
    for (i, slot) in old_to_new.iter().enumerate() {
        if let Some(new) = slot {
            if i < old.len() {
                out[new.index()] = std::mem::take(&mut old[i]);
            }
        }
    }
    *v = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::Tree;

    #[test]
    fn compact_drops_moves_and_shrinks() {
        // Arena: [root, a, x, b]; extracting `a` drops indices 1..=2.
        let mut t = Tree::new("r");
        t.insert_path(&["a", "x"]);
        t.insert_path(&["b"]);
        let map = t.extract_top_subtrees(|l| l == "a").old_to_new;
        let mut v = vec![10, 20, 30, 40];
        compact_vec(&mut v, &map);
        assert_eq!(v, vec![10, 40]);
        // Short vectors pad the missing tail with defaults.
        let mut short = vec![10];
        compact_vec(&mut short, &map);
        assert_eq!(short, vec![10, 0]);
    }
}
