use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use tiresias_hierarchy::{NodeId, Tree, TreeSurgery};

use crate::config::HhhConfig;
use crate::error::HhhError;
use crate::memory::MemoryReport;
use crate::model::Model;
use crate::shhh::{aggregate_weights, compute_shhh, series_values};
use crate::timings::StageTimings;

/// Per-heavy-hitter state reconstructed by STA at the latest instance.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct StaSeries {
    actual: Vec<f64>,
    forecast: Vec<f64>,
    model: Model,
}

/// The strawman algorithm **STA** (Fig. 4 of the paper).
///
/// STA keeps the raw per-timeunit count vectors for the whole sliding
/// window of ℓ timeunits. At every time instance it recomputes the
/// succinct heavy hitter set on the newest timeunit (Definition 2) and
/// then *reconstructs from scratch* the time series of every heavy
/// hitter by sweeping all ℓ stored timeunits with the membership held
/// fixed (Definition 3). Forecasting models are replayed over the
/// reconstructed series.
///
/// This is exact — the paper (and this workspace) uses STA as ground
/// truth when measuring ADA's series and detection accuracy — but costs
/// Θ(ℓ·|tree|) time per instance and Θ(ℓ·nonzero) memory, which is what
/// Tables III and IV quantify.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::Tree;
/// use tiresias_hhh::{HhhConfig, ModelSpec, Sta};
///
/// let mut tree = Tree::new("All");
/// let leaf = tree.insert_path(&["TV", "No Service"]);
/// let cfg = HhhConfig::new(5.0, 8).with_model(ModelSpec::Ewma { alpha: 0.5 });
/// let mut sta = Sta::new(cfg)?;
/// for _ in 0..10 {
///     let mut direct = vec![0.0; tree.len()];
///     direct[leaf.index()] = 7.0;
///     sta.push_timeunit(&tree, &direct);
/// }
/// assert!(sta.is_heavy_hitter(leaf));
/// let actual = sta.actual_series(leaf).unwrap();
/// assert_eq!(actual.len(), 8); // full window
/// assert!(actual.iter().all(|&v| v == 7.0));
/// # Ok::<(), tiresias_hhh::HhhError>(())
/// ```
///
/// `Sta` is fully serialisable (serde) for checkpoint/restore, like
/// [`crate::Ada`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Sta {
    config: HhhConfig,
    /// Sparse direct counts per stored unit (index, count), oldest →
    /// newest, at most ℓ units. Sparse storage mirrors the paper's
    /// per-timeunit trees, which only materialise touched nodes.
    units: VecDeque<Vec<(u32, f64)>>,
    /// Dense scratch buffer reused by the per-unit sweeps.
    scratch: Vec<f64>,
    members: Vec<NodeId>,
    is_member: Vec<bool>,
    modified: Vec<f64>,
    #[serde(with = "node_keyed_map")]
    series: HashMap<NodeId, StaSeries>,
    timings: StageTimings,
    instances: u64,
}

/// Serialises `HashMap<NodeId, V>` as a sequence of pairs so formats
/// with string-only map keys (JSON) work.
mod node_keyed_map {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S, V>(map: &HashMap<NodeId, V>, s: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
        V: serde::Serialize,
    {
        let pairs: Vec<(&NodeId, &V)> = map.iter().collect();
        serde::Serialize::serialize(&pairs, s)
    }

    pub fn deserialize<'de, D, V>(d: D) -> Result<HashMap<NodeId, V>, D::Error>
    where
        D: Deserializer<'de>,
        V: serde::Deserialize<'de>,
    {
        let pairs: Vec<(NodeId, V)> = serde::Deserialize::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Detached per-node STA state for an extracted set of top-level
/// subtrees. Node references are positions in the moved list of the
/// [`TreeSurgery`] that produced the slice; [`Sta::adopt_nodes`]
/// resolves them against the adopting tree's new ids.
#[derive(Debug)]
pub struct StaSlice {
    /// Sparse direct counts of the moved nodes per stored unit, oldest
    /// → newest, aligned one-to-one with the source window.
    units: Vec<Vec<(u32, f64)>>,
    series: Vec<(u32, StaSeries)>,
    is_member: Vec<bool>,
    modified: Vec<f64>,
    instances: u64,
}

impl Sta {
    /// Creates an STA tracker.
    ///
    /// # Errors
    ///
    /// Returns [`HhhError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: HhhConfig) -> Result<Self, HhhError> {
        config.validate().map_err(HhhError::InvalidConfig)?;
        Ok(Sta {
            config,
            units: VecDeque::new(),
            scratch: Vec::new(),
            members: Vec::new(),
            is_member: Vec::new(),
            modified: Vec::new(),
            series: HashMap::new(),
            timings: StageTimings::default(),
            instances: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &HhhConfig {
        &self.config
    }

    /// Number of timeunits processed so far.
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// Feeds the direct (pre-aggregation) counts of one closed timeunit
    /// and recomputes heavy hitters and all their time series.
    ///
    /// # Panics
    ///
    /// Panics if `direct.len() < tree.len()`.
    pub fn push_timeunit(&mut self, tree: &Tree, direct: &[f64]) {
        assert!(direct.len() >= tree.len(), "direct counts must cover the tree");
        if self.units.len() == self.config.ell {
            self.units.pop_front();
        }
        let sparse: Vec<(u32, f64)> = direct[..tree.len()]
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self.units.push_back(sparse);

        // Stage: updating hierarchies (Definition 2 on the newest unit).
        let t0 = Instant::now();
        let shhh = compute_shhh(tree, direct, self.config.theta);
        self.members = shhh.members;
        self.is_member = shhh.is_member;
        self.modified = shhh.modified;
        self.timings.updating_hierarchies += t0.elapsed();

        // Stage: creating time series — the Θ(ℓ·|tree|) sweep.
        let t1 = Instant::now();
        self.series.clear();
        let mut per_member: HashMap<NodeId, Vec<f64>> =
            self.members.iter().map(|&n| (n, Vec::with_capacity(self.units.len()))).collect();
        self.scratch.clear();
        self.scratch.resize(tree.len(), 0.0);
        for unit in &self.units {
            // Indices beyond the current tree length cannot occur: the
            // tree only grows, so old sparse entries stay valid.
            for &(i, v) in unit {
                self.scratch[i as usize] = v;
            }
            let values = series_values(tree, &self.scratch, &self.is_member);
            for &(i, _) in unit {
                self.scratch[i as usize] = 0.0;
            }
            for (&n, hist) in per_member.iter_mut() {
                hist.push(values[n.index()]);
            }
        }
        for (n, actual) in per_member {
            match Model::replay(
                &self.config.model,
                &actual,
                self.instances + 1 - actual.len() as u64,
            ) {
                Ok((model, forecast)) => {
                    self.series.insert(n, StaSeries { actual, forecast, model });
                }
                Err(_) => {
                    // Invalid model parameters are caught at construction;
                    // replay over finite data cannot fail, but degrade
                    // gracefully if it ever does.
                }
            }
        }
        self.timings.creating_time_series += t1.elapsed();
        self.instances += 1;
    }

    /// The current succinct heavy hitter set.
    pub fn heavy_hitters(&self) -> &[NodeId] {
        &self.members
    }

    /// `true` iff `n` is currently a heavy hitter.
    pub fn is_heavy_hitter(&self, n: NodeId) -> bool {
        self.is_member.get(n.index()).copied().unwrap_or(false)
    }

    /// The modified (Definition-2) weight of `n` in the newest timeunit.
    pub fn modified_weight(&self, n: NodeId) -> f64 {
        self.modified.get(n.index()).copied().unwrap_or(0.0)
    }

    /// The reconstructed actual series of heavy hitter `n` (oldest →
    /// newest), or `None` if `n` is not a heavy hitter.
    pub fn actual_series(&self, n: NodeId) -> Option<&[f64]> {
        self.series.get(&n).map(|s| s.actual.as_slice())
    }

    /// The replayed one-step forecasts aligned with
    /// [`Sta::actual_series`].
    pub fn forecast_series(&self, n: NodeId) -> Option<&[f64]> {
        self.series.get(&n).map(|s| s.forecast.as_slice())
    }

    /// Newest `(actual, forecast)` pair of heavy hitter `n` — the inputs
    /// of the Definition-4 anomaly test.
    pub fn latest(&self, n: NodeId) -> Option<(f64, f64)> {
        let s = self.series.get(&n)?;
        Some((*s.actual.last()?, *s.forecast.last()?))
    }

    /// The forecast for the *next* (not yet observed) timeunit of heavy
    /// hitter `n`, from its replayed model.
    pub fn next_forecast(&self, n: NodeId) -> Option<f64> {
        self.series.get(&n).map(|s| s.model.forecast())
    }

    /// Aggregate weights `A_n` of the newest timeunit.
    pub fn latest_aggregates(&self, tree: &Tree) -> Vec<f64> {
        let mut dense = vec![0.0; tree.len()];
        if let Some(unit) = self.units.back() {
            for &(i, v) in unit {
                dense[i as usize] = v;
            }
            return aggregate_weights(tree, &dense);
        }
        dense
    }

    /// Detaches the tracker state of the nodes removed from the tree by
    /// `surgery` and remaps everything that survives to the compacted
    /// `tree` (the post-[`Tree::extract_top_subtrees`] tree).
    ///
    /// STA's window holds *raw* per-unit counts, so the cut is exact by
    /// construction: the moved sparse entries are precisely the records
    /// the subtree's stream contributed, and replaying them into another
    /// shard's window reproduces the state that shard would hold had the
    /// records been routed there from the start.
    pub fn extract_nodes(&mut self, tree: &Tree, surgery: &TreeSurgery) -> StaSlice {
        let mut slot_of: Vec<Option<u32>> = vec![None; surgery.old_to_new.len()];
        for (slot, m) in surgery.moved.iter().enumerate() {
            slot_of[m.old_id.index()] = Some(slot as u32);
        }
        let mut moved_units = Vec::with_capacity(self.units.len());
        for unit in self.units.iter_mut() {
            let old_unit = std::mem::take(unit);
            let mut moved = Vec::new();
            for (i, v) in old_unit {
                match slot_of[i as usize] {
                    Some(slot) => moved.push((slot, v)),
                    None => {
                        let new = surgery.old_to_new[i as usize]
                            .expect("unmoved sparse entry survives compaction");
                        unit.push((new.index() as u32, v));
                    }
                }
            }
            moved_units.push(moved);
        }
        let mut moved_series = Vec::new();
        let old_series = std::mem::take(&mut self.series);
        for (n, s) in old_series {
            match slot_of[n.index()] {
                Some(slot) => moved_series.push((slot, s)),
                None => {
                    let new = surgery.old_to_new[n.index()]
                        .expect("unmoved series entry survives compaction");
                    self.series.insert(new, s);
                }
            }
        }
        moved_series.sort_by_key(|&(slot, _)| slot);
        let slice = StaSlice {
            units: moved_units,
            series: moved_series,
            is_member: surgery
                .moved
                .iter()
                .map(|m| self.is_member.get(m.old_id.index()).copied().unwrap_or(false))
                .collect(),
            modified: surgery
                .moved
                .iter()
                .map(|m| self.modified.get(m.old_id.index()).copied().unwrap_or(0.0))
                .collect(),
            instances: self.instances,
        };
        crate::surgery::compact_vec(&mut self.is_member, &surgery.old_to_new);
        crate::surgery::compact_vec(&mut self.modified, &surgery.old_to_new);
        self.rebuild_members(tree);
        slice
    }

    /// Grafts a detached slice at `new_ids` (the node ids returned by
    /// [`Tree::adopt_top_subtrees`] for the same moved list).
    ///
    /// # Panics
    ///
    /// Panics if the slice was cut at a different timeline position —
    /// shards rebalance only at epoch barriers, where `instances` (and
    /// therefore the stored window length) agree everywhere — or if
    /// `new_ids` does not match the slice.
    pub fn adopt_nodes(&mut self, tree: &Tree, new_ids: &[NodeId], slice: StaSlice) {
        assert_eq!(slice.instances, self.instances, "adopting across unaligned timelines");
        assert_eq!(slice.units.len(), self.units.len(), "adopting across unaligned windows");
        for (unit, moved) in self.units.iter_mut().zip(slice.units) {
            for (slot, v) in moved {
                unit.push((new_ids[slot as usize].index() as u32, v));
            }
            // Restore the canonical ascending-index form the dense
            // scatter produces; entries are unique by construction.
            unit.sort_unstable_by_key(|&(i, _)| i);
        }
        for (slot, s) in slice.series {
            self.series.insert(new_ids[slot as usize], s);
        }
        let len = tree.len();
        if self.is_member.len() < len {
            self.is_member.resize(len, false);
            self.modified.resize(len, 0.0);
        }
        for (slot, &id) in new_ids.iter().enumerate() {
            self.is_member[id.index()] = slice.is_member[slot];
            self.modified[id.index()] = slice.modified[slot];
        }
        self.rebuild_members(tree);
    }

    /// Recomputes the member list from the membership flags, in the
    /// bottom-up discovery order [`compute_shhh`] produces.
    fn rebuild_members(&mut self, tree: &Tree) {
        self.members.clear();
        self.members.extend(
            tree.rev_level_order()
                .filter(|n| self.is_member.get(n.index()).copied().unwrap_or(false)),
        );
    }

    /// Cumulative stage timings.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Memory accounting (see [`MemoryReport`]).
    pub fn memory_report(&self, tree: &Tree) -> MemoryReport {
        MemoryReport {
            tree_nodes: tree.len(),
            history_cells: self.units.iter().map(Vec::len).sum(),
            series_cells: self.series.values().map(|s| s.actual.len() + s.forecast.len()).sum(),
            reference_cells: 0,
            heavy_hitters: self.members.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    fn tree() -> (Tree, NodeId, NodeId) {
        let mut t = Tree::new("root");
        let x = t.insert_path(&["a", "x"]);
        let y = t.insert_path(&["a", "y"]);
        (t, x, y)
    }

    fn cfg(theta: f64, ell: usize) -> HhhConfig {
        HhhConfig::new(theta, ell).with_model(ModelSpec::Ewma { alpha: 0.5 })
    }

    #[test]
    fn window_is_bounded_by_ell() {
        let (t, x, _) = tree();
        let mut sta = Sta::new(cfg(5.0, 4)).unwrap();
        for i in 0..10 {
            let mut d = vec![0.0; t.len()];
            d[x.index()] = 10.0 + i as f64;
            sta.push_timeunit(&t, &d);
        }
        assert_eq!(sta.actual_series(x).unwrap().len(), 4);
        // Newest value is the last push.
        assert_eq!(*sta.actual_series(x).unwrap().last().unwrap(), 19.0);
    }

    #[test]
    fn membership_changes_rebuild_series_for_new_members() {
        let (t, x, y) = tree();
        let a = t.find(&["a"]).unwrap();
        let mut sta = Sta::new(cfg(10.0, 8)).unwrap();
        // Phase 1: only x heavy.
        for _ in 0..3 {
            let mut d = vec![0.0; t.len()];
            d[x.index()] = 20.0;
            d[y.index()] = 3.0;
            sta.push_timeunit(&t, &d);
        }
        assert!(sta.is_heavy_hitter(x));
        assert!(!sta.is_heavy_hitter(a));
        // Phase 2: x cools, mass moves so that only the interior `a`
        // aggregate is heavy.
        let mut d = vec![0.0; t.len()];
        d[x.index()] = 6.0;
        d[y.index()] = 6.0;
        sta.push_timeunit(&t, &d);
        assert!(!sta.is_heavy_hitter(x));
        assert!(sta.is_heavy_hitter(a));
        // a's series covers the full history: 23 for the first 3 units
        // (x not a member anymore, so nothing is discounted), then 12.
        assert_eq!(sta.actual_series(a).unwrap(), &[23.0, 23.0, 23.0, 12.0]);
    }

    #[test]
    fn series_discounts_current_members_only() {
        let (t, x, y) = tree();
        let a = t.find(&["a"]).unwrap();
        let mut sta = Sta::new(cfg(10.0, 8)).unwrap();
        // Both x and the residual of a are heavy.
        for _ in 0..2 {
            let mut d = vec![0.0; t.len()];
            d[x.index()] = 30.0;
            d[y.index()] = 15.0;
            sta.push_timeunit(&t, &d);
        }
        assert!(sta.is_heavy_hitter(x));
        assert!(sta.is_heavy_hitter(y));
        // a's residual after discounting both member children is 0.
        assert!(!sta.is_heavy_hitter(a));
        assert_eq!(sta.modified_weight(a), 0.0);
    }

    #[test]
    fn forecast_series_aligns_with_actual() {
        let (t, x, _) = tree();
        let mut sta = Sta::new(cfg(5.0, 8)).unwrap();
        for i in 0..6 {
            let mut d = vec![0.0; t.len()];
            d[x.index()] = 10.0 + i as f64;
            sta.push_timeunit(&t, &d);
        }
        let actual = sta.actual_series(x).unwrap();
        let forecast = sta.forecast_series(x).unwrap();
        assert_eq!(actual.len(), forecast.len());
        let (la, lf) = sta.latest(x).unwrap();
        assert_eq!(la, *actual.last().unwrap());
        assert_eq!(lf, *forecast.last().unwrap());
    }

    #[test]
    fn tree_growth_mid_stream_is_handled() {
        let (mut t, x, _) = tree();
        let mut sta = Sta::new(cfg(5.0, 8)).unwrap();
        let mut d = vec![0.0; t.len()];
        d[x.index()] = 9.0;
        sta.push_timeunit(&t, &d);
        // New category appears.
        let z = t.insert_path(&["b", "z"]);
        let mut d = vec![0.0; t.len()];
        d[z.index()] = 12.0;
        sta.push_timeunit(&t, &d);
        assert!(sta.is_heavy_hitter(z));
        // z's series covers both units; the old unit contributes zero.
        assert_eq!(sta.actual_series(z).unwrap(), &[0.0, 12.0]);
    }

    #[test]
    fn memory_report_counts_nonzero_history() {
        let (t, x, y) = tree();
        let mut sta = Sta::new(cfg(5.0, 8)).unwrap();
        let mut d = vec![0.0; t.len()];
        d[x.index()] = 9.0;
        d[y.index()] = 1.0;
        sta.push_timeunit(&t, &d);
        let report = sta.memory_report(&t);
        assert_eq!(report.history_cells, 2);
        assert_eq!(report.tree_nodes, t.len());
        assert!(report.series_cells > 0);
    }

    #[test]
    fn timings_accumulate() {
        let (t, x, _) = tree();
        let mut sta = Sta::new(cfg(5.0, 64)).unwrap();
        for _ in 0..32 {
            let mut d = vec![0.0; t.len()];
            d[x.index()] = 9.0;
            sta.push_timeunit(&t, &d);
        }
        let tm = sta.timings();
        assert!(tm.creating_time_series > std::time::Duration::ZERO);
        assert_eq!(sta.instances(), 32);
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(matches!(Sta::new(HhhConfig::new(0.0, 8)), Err(HhhError::InvalidConfig(_))));
    }

    #[test]
    fn extract_adopt_matches_native_routing() {
        use tiresias_hierarchy::Tree;
        // `b` migrates from a tracker holding (a, b) to one holding (c);
        // the result must equal a tracker that held (b, c) all along.
        let config = cfg(10.0, 4);
        let mut src_tree = Tree::new("root");
        src_tree.insert_path(&["a", "x"]);
        src_tree.insert_path(&["b", "y"]);
        let mut dst_tree = Tree::new("root");
        dst_tree.insert_path(&["c", "z"]);
        let mut native_tree = Tree::new("root");
        native_tree.insert_path(&["b", "y"]);
        native_tree.insert_path(&["c", "z"]);

        let mut src = Sta::new(config.clone()).unwrap();
        let mut dst = Sta::new(config.clone()).unwrap();
        let mut native = Sta::new(config).unwrap();
        let feed = |tree: &Tree, sta: &mut Sta, pairs: &[(&[&str], f64)]| {
            let mut d = vec![0.0; tree.len()];
            for (path, w) in pairs {
                if let Some(n) = tree.find(path) {
                    d[n.index()] = *w;
                }
            }
            sta.push_timeunit(tree, &d);
        };
        // Long enough that the bounded window (ℓ = 4) has rolled.
        for i in 0..6 {
            let by = 12.0 + i as f64;
            feed(&src_tree, &mut src, &[(&["a", "x"], 20.0), (&["b", "y"], by)]);
            feed(&dst_tree, &mut dst, &[(&["c", "z"], 15.0)]);
            feed(&native_tree, &mut native, &[(&["b", "y"], by), (&["c", "z"], 15.0)]);
        }

        let surgery = src_tree.extract_top_subtrees(|l| l == "b");
        let slice = src.extract_nodes(&src_tree, &surgery);
        let ids = dst_tree.adopt_top_subtrees(&surgery.moved);
        dst.adopt_nodes(&dst_tree, &ids, slice);

        let by_dst = dst_tree.find(&["b", "y"]).unwrap();
        let by_native = native_tree.find(&["b", "y"]).unwrap();
        assert!(dst.is_heavy_hitter(by_dst));
        assert_eq!(dst.actual_series(by_dst), native.actual_series(by_native));
        assert_eq!(dst.modified_weight(by_dst), native.modified_weight(by_native));
        assert!(!src.is_heavy_hitter(by_dst), "source dropped the moved state");

        // Future units (including full window reconstruction from the
        // transplanted raw counts) evolve identically.
        for i in 0..6 {
            let by = if i % 2 == 0 { 25.0 } else { 3.0 };
            feed(&src_tree, &mut src, &[(&["a", "x"], 20.0)]);
            feed(&dst_tree, &mut dst, &[(&["b", "y"], by), (&["c", "z"], 15.0)]);
            feed(&native_tree, &mut native, &[(&["b", "y"], by), (&["c", "z"], 15.0)]);
            for path in [["b", "y"], ["c", "z"]] {
                let n = dst_tree.find(&path).unwrap();
                let m = native_tree.find(&path).unwrap();
                assert_eq!(dst.is_heavy_hitter(n), native.is_heavy_hitter(m), "unit {i}");
                assert_eq!(dst.actual_series(n), native.actual_series(m), "unit {i}");
                assert_eq!(dst.forecast_series(n), native.forecast_series(m), "unit {i}");
            }
        }
    }
}
