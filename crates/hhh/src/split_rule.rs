use serde::{Deserialize, Serialize};

use tiresias_hierarchy::{NodeId, Tree};

/// The heuristic deriving the scale ratio `F(n_c, C_n)` used by ADA's
/// `SPLIT` operation to apportion a parent's time series among its
/// children (§V-B4).
///
/// Each rule assigns every node a weight-related property `X_n`; the
/// ratio for child `n_c` is `X_{n_c} / Σ_{m ∈ C_n} X_m`. If every
/// property in the set is zero the split degenerates to uniform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// `X_n = 1`: split evenly across the children.
    Uniform,
    /// `X_n` = the node's aggregate count in the previous timeunit.
    LastTimeUnit,
    /// `X_n` = the node's total aggregate count over all past timeunits.
    LongTermHistory,
    /// `X_n` = an exponentially smoothed aggregate count with rate
    /// `alpha`.
    Ewma {
        /// Smoothing rate in `(0, 1]`.
        alpha: f64,
    },
}

impl Default for SplitRule {
    /// `LongTermHistory`, the rule the paper found slightly more accurate
    /// than the alternatives (Fig. 12).
    fn default() -> Self {
        SplitRule::LongTermHistory
    }
}

impl std::fmt::Display for SplitRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitRule::Uniform => write!(f, "Uniform"),
            SplitRule::LastTimeUnit => write!(f, "Last-Time-Unit"),
            SplitRule::LongTermHistory => write!(f, "Long-Term-History"),
            SplitRule::Ewma { alpha } => write!(f, "EWMA(α={alpha})"),
        }
    }
}

/// Per-node statistics backing the split rules: previous-unit, cumulative
/// and exponentially smoothed aggregate counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitStats {
    prev: Vec<f64>,
    total: Vec<f64>,
    ewma: Vec<f64>,
    ewma_seeded: Vec<bool>,
}

/// One node's detached statistics row, used when a subtree (and the
/// split-ratio history that shapes its future splits) migrates between
/// shard detectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatRow {
    /// Previous-unit aggregate (`LastTimeUnit` property).
    pub prev: f64,
    /// Cumulative aggregate (`LongTermHistory` property).
    pub total: f64,
    /// Smoothed aggregate (`Ewma` property).
    pub ewma: f64,
    /// Whether the EWMA has observed its seeding unit.
    pub seeded: bool,
}

impl SplitStats {
    /// Creates zeroed statistics for a tree of `len` nodes.
    pub fn with_len(len: usize) -> Self {
        SplitStats {
            prev: vec![0.0; len],
            total: vec![0.0; len],
            ewma: vec![0.0; len],
            ewma_seeded: vec![false; len],
        }
    }

    /// Grows the statistics to cover a tree that gained nodes.
    pub fn resize(&mut self, len: usize) {
        if self.prev.len() < len {
            self.prev.resize(len, 0.0);
            self.total.resize(len, 0.0);
            self.ewma.resize(len, 0.0);
            self.ewma_seeded.resize(len, false);
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.prev.len()
    }

    /// `true` if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.prev.is_empty()
    }

    /// Folds one timeunit's aggregate weights `A_n` into the statistics.
    /// `ewma_alpha` is the smoothing rate used for the EWMA property.
    ///
    /// # Panics
    ///
    /// Panics if `aggregates` is shorter than the tracked node count.
    pub fn record_unit(&mut self, aggregates: &[f64], ewma_alpha: f64) {
        assert!(aggregates.len() >= self.prev.len());
        for i in 0..self.prev.len() {
            let a = aggregates[i];
            self.prev[i] = a;
            self.total[i] += a;
            if self.ewma_seeded[i] {
                self.ewma[i] = ewma_alpha * a + (1.0 - ewma_alpha) * self.ewma[i];
            } else {
                self.ewma[i] = a;
                self.ewma_seeded[i] = true;
            }
        }
    }

    /// The detached row of node index `i` (zeros when the statistics
    /// have not grown to cover `i` yet).
    pub fn row(&self, i: usize) -> StatRow {
        StatRow {
            prev: self.prev.get(i).copied().unwrap_or(0.0),
            total: self.total.get(i).copied().unwrap_or(0.0),
            ewma: self.ewma.get(i).copied().unwrap_or(0.0),
            seeded: self.ewma_seeded.get(i).copied().unwrap_or(false),
        }
    }

    /// Writes `row` at node index `i`, growing the statistics as needed.
    pub fn set_row(&mut self, i: usize, row: StatRow) {
        self.resize(i + 1);
        self.prev[i] = row.prev;
        self.total[i] = row.total;
        self.ewma[i] = row.ewma;
        self.ewma_seeded[i] = row.seeded;
    }

    /// Remaps the statistics through a tree compaction: entry `i` moves
    /// to `old_to_new[i]`, entries mapped to `None` are dropped, and the
    /// vectors shrink to the surviving count. Indices past the current
    /// length are treated as zero rows.
    pub fn compact(&mut self, old_to_new: &[Option<NodeId>]) {
        let new_len = old_to_new.iter().flatten().count();
        let mut prev = vec![0.0; new_len];
        let mut total = vec![0.0; new_len];
        let mut ewma = vec![0.0; new_len];
        let mut seeded = vec![false; new_len];
        for (i, slot) in old_to_new.iter().enumerate() {
            if let Some(new) = slot {
                if i < self.prev.len() {
                    prev[new.index()] = self.prev[i];
                    total[new.index()] = self.total[i];
                    ewma[new.index()] = self.ewma[i];
                    seeded[new.index()] = self.ewma_seeded[i];
                }
            }
        }
        self.prev = prev;
        self.total = total;
        self.ewma = ewma;
        self.ewma_seeded = seeded;
    }

    /// The property `X_n` of `node` under `rule`.
    pub fn property(&self, rule: SplitRule, node: NodeId) -> f64 {
        match rule {
            SplitRule::Uniform => 1.0,
            SplitRule::LastTimeUnit => self.prev[node.index()],
            SplitRule::LongTermHistory => self.total[node.index()],
            SplitRule::Ewma { .. } => self.ewma[node.index()],
        }
    }

    /// The split ratios `F(n_c, C_n)` for the child set `children`,
    /// in the same order. Ratios are non-negative and sum to 1 (falling
    /// back to uniform when every property is zero).
    pub fn ratios(&self, rule: SplitRule, children: &[NodeId]) -> Vec<f64> {
        if children.is_empty() {
            return Vec::new();
        }
        let props: Vec<f64> = children.iter().map(|&c| self.property(rule, c).max(0.0)).collect();
        let sum: f64 = props.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / children.len() as f64; children.len()];
        }
        props.iter().map(|p| p / sum).collect()
    }

    /// Convenience: ratios over the non-member children of `parent`.
    pub fn ratios_for_children(
        &self,
        rule: SplitRule,
        tree: &Tree,
        children: &[NodeId],
    ) -> Vec<f64> {
        let _ = tree;
        self.ratios(rule, children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_hierarchy::Tree;

    fn setup() -> (Tree, Vec<NodeId>) {
        let mut t = Tree::new("r");
        let a = t.insert_path(&["a"]);
        let b = t.insert_path(&["b"]);
        let c = t.insert_path(&["c"]);
        (t, vec![a, b, c])
    }

    #[test]
    fn uniform_splits_evenly() {
        let (t, kids) = setup();
        let stats = SplitStats::with_len(t.len());
        let r = stats.ratios(SplitRule::Uniform, &kids);
        for x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn last_time_unit_uses_previous_aggregates() {
        let (t, kids) = setup();
        let mut stats = SplitStats::with_len(t.len());
        let mut agg = vec![0.0; t.len()];
        agg[kids[0].index()] = 6.0;
        agg[kids[1].index()] = 2.0;
        agg[kids[2].index()] = 0.0;
        stats.record_unit(&agg, 0.5);
        let r = stats.ratios(SplitRule::LastTimeUnit, &kids);
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
        assert_eq!(r[2], 0.0);
    }

    #[test]
    fn long_term_history_accumulates() {
        let (t, kids) = setup();
        let mut stats = SplitStats::with_len(t.len());
        for unit in 0..4 {
            let mut agg = vec![0.0; t.len()];
            agg[kids[0].index()] = 1.0;
            agg[kids[1].index()] = if unit == 3 { 9.0 } else { 0.0 };
            stats.record_unit(&agg, 0.5);
        }
        // totals: a = 4, b = 9 → LTH favours b, LTU favours b even more.
        let lth = stats.ratios(SplitRule::LongTermHistory, &kids);
        assert!((lth[0] - 4.0 / 13.0).abs() < 1e-12);
        assert!((lth[1] - 9.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_interpolates_between_last_and_history() {
        let (t, kids) = setup();
        let mut stats = SplitStats::with_len(t.len());
        let mut agg = vec![0.0; t.len()];
        agg[kids[0].index()] = 8.0;
        stats.record_unit(&agg, 0.25);
        agg[kids[0].index()] = 0.0;
        agg[kids[1].index()] = 8.0;
        stats.record_unit(&agg, 0.25);
        // a: seeded 8 then 0.75·8 = 6; b: seeded... b was seeded at 0 on
        // the first unit, then 0.25·8 = 2.
        assert!((stats.property(SplitRule::Ewma { alpha: 0.25 }, kids[0]) - 6.0).abs() < 1e-12);
        assert!((stats.property(SplitRule::Ewma { alpha: 0.25 }, kids[1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_properties_fall_back_to_uniform() {
        let (t, kids) = setup();
        let stats = SplitStats::with_len(t.len());
        let r = stats.ratios(SplitRule::LongTermHistory, &kids);
        for x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ratios_always_sum_to_one() {
        let (t, kids) = setup();
        let mut stats = SplitStats::with_len(t.len());
        let mut agg = vec![0.0; t.len()];
        agg[kids[0].index()] = 3.0;
        agg[kids[1].index()] = 5.0;
        agg[kids[2].index()] = 11.0;
        stats.record_unit(&agg, 0.5);
        for rule in [
            SplitRule::Uniform,
            SplitRule::LastTimeUnit,
            SplitRule::LongTermHistory,
            SplitRule::Ewma { alpha: 0.5 },
        ] {
            let r = stats.ratios(rule, &kids);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{rule}");
        }
    }

    #[test]
    fn empty_child_set_is_empty() {
        let (_, _) = setup();
        let stats = SplitStats::with_len(4);
        assert!(stats.ratios(SplitRule::Uniform, &[]).is_empty());
    }

    #[test]
    fn resize_preserves_existing() {
        let mut stats = SplitStats::with_len(2);
        stats.record_unit(&[1.0, 2.0], 0.5);
        stats.resize(4);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.prev[1], 2.0);
        assert_eq!(stats.prev[3], 0.0);
    }
}
