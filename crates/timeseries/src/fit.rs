use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;
use crate::forecast::Forecaster;
use crate::holt_winters::HoltWinters;

/// Smoothing parameters of an additive Holt-Winters model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwParams {
    /// Level smoothing rate α.
    pub alpha: f64,
    /// Trend smoothing rate β.
    pub beta: f64,
    /// Seasonal smoothing rate γ.
    pub gamma: f64,
}

impl HwParams {
    /// Creates a parameter triple.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Self {
        HwParams { alpha, beta, gamma }
    }
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams { alpha: 0.5, beta: 0.1, gamma: 0.3 }
    }
}

/// Candidate values for the grid search over `(α, β, γ)`.
///
/// The paper selects forecasting parameters offline by minimising the
/// mean squared forecast error (§VII, "System parameters"); this grid
/// drives that search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGrid {
    /// Candidate α values.
    pub alphas: Vec<f64>,
    /// Candidate β values.
    pub betas: Vec<f64>,
    /// Candidate γ values.
    pub gammas: Vec<f64>,
}

impl Default for ParamGrid {
    /// A coarse 5×4×4 grid adequate for the operational workloads.
    fn default() -> Self {
        ParamGrid {
            alphas: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            betas: vec![0.0, 0.05, 0.1, 0.3],
            gammas: vec![0.05, 0.1, 0.3, 0.6],
        }
    }
}

/// Result of [`fit_holt_winters`]: the winning parameters and the mean
/// squared one-step forecast error they achieved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Parameters with the minimal mean squared error.
    pub params: HwParams,
    /// Mean squared one-step forecast error over the evaluation span.
    pub mse: f64,
}

/// Selects Holt-Winters smoothing parameters by exhaustive grid search,
/// minimising the mean squared one-step forecast error on `series`
/// (the paper's offline parameter selection, §VII).
///
/// The first `2·season` samples initialise each candidate model; the
/// remainder is scored.
///
/// # Errors
///
/// Returns [`TimeSeriesError::InsufficientHistory`] if `series` does not
/// extend past the initialisation span, and
/// [`TimeSeriesError::InvalidParameter`] if the grid is empty or the
/// season is zero.
///
/// # Example
///
/// ```
/// use tiresias_timeseries::{fit_holt_winters, ParamGrid};
///
/// let series: Vec<f64> = (0..64).map(|t| 10.0 + 3.0 * (t % 8) as f64).collect();
/// let report = fit_holt_winters(&series, 8, &ParamGrid::default())?;
/// assert!(report.mse < 1.0, "periodic series fits almost perfectly");
/// # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
/// ```
pub fn fit_holt_winters(
    series: &[f64],
    season: usize,
    grid: &ParamGrid,
) -> Result<FitReport, TimeSeriesError> {
    if season == 0 {
        return Err(TimeSeriesError::InvalidParameter("season length must be positive".into()));
    }
    if grid.alphas.is_empty() || grid.betas.is_empty() || grid.gammas.is_empty() {
        return Err(TimeSeriesError::InvalidParameter(
            "parameter grid must be non-empty on every axis".into(),
        ));
    }
    let init = 2 * season;
    if series.len() <= init {
        return Err(TimeSeriesError::InsufficientHistory { needed: init + 1, got: series.len() });
    }
    let mut best: Option<FitReport> = None;
    for &alpha in &grid.alphas {
        for &beta in &grid.betas {
            for &gamma in &grid.gammas {
                let mut hw =
                    HoltWinters::from_history(alpha, beta, gamma, season, &series[..init])?;
                let mut sq = 0.0;
                for &actual in &series[init..] {
                    let err = actual - hw.forecast();
                    sq += err * err;
                    hw.observe(actual);
                }
                let mse = sq / (series.len() - init) as f64;
                if best.is_none_or(|b| mse < b.mse) {
                    best = Some(FitReport { params: HwParams::new(alpha, beta, gamma), mse });
                }
            }
        }
    }
    Ok(best.expect("grid is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_periodic_series_well() {
        let series: Vec<f64> = (0..80).map(|t| 5.0 + (t % 8) as f64).collect();
        let r = fit_holt_winters(&series, 8, &ParamGrid::default()).unwrap();
        assert!(r.mse < 0.5, "mse {}", r.mse);
    }

    #[test]
    fn best_params_beat_worst_params() {
        // Noisy-ish seasonal series: grid winner must be no worse than an
        // arbitrary grid member.
        let series: Vec<f64> = (0..96)
            .map(|t| 10.0 + 4.0 * (t % 12) as f64 + if t % 5 == 0 { 3.0 } else { 0.0 })
            .collect();
        let grid = ParamGrid::default();
        let best = fit_holt_winters(&series, 12, &grid).unwrap();
        // Evaluate one fixed candidate by hand.
        let mut hw = HoltWinters::from_history(0.9, 0.3, 0.6, 12, &series[..24]).unwrap();
        let mut sq = 0.0;
        for &a in &series[24..] {
            let e = a - hw.forecast();
            sq += e * e;
            hw.observe(a);
        }
        let candidate_mse = sq / (series.len() - 24) as f64;
        assert!(best.mse <= candidate_mse + 1e-12);
    }

    #[test]
    fn insufficient_history_rejected() {
        let r = fit_holt_winters(&[1.0; 16], 8, &ParamGrid::default());
        assert!(matches!(r, Err(TimeSeriesError::InsufficientHistory { needed: 17, got: 16 })));
    }

    #[test]
    fn empty_grid_rejected() {
        let grid = ParamGrid { alphas: vec![], betas: vec![0.1], gammas: vec![0.1] };
        assert!(fit_holt_winters(&[1.0; 32], 4, &grid).is_err());
    }

    #[test]
    fn zero_season_rejected() {
        assert!(fit_holt_winters(&[1.0; 32], 0, &ParamGrid::default()).is_err());
    }

    #[test]
    fn default_params_are_valid_rates() {
        let p = HwParams::default();
        for v in [p.alpha, p.beta, p.gamma] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
