use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;
use crate::forecast::{Forecaster, LinearForecaster};

/// Exponentially weighted moving-average forecaster:
/// `F[t+1] = α·T[t] + (1−α)·F[t]`.
///
/// EWMA is the simple non-seasonal model the paper uses (a) to analyse the
/// error introduced by a biased split (§V-B4, Eq. 1–2, Fig. 9) and (b) as
/// the per-scale forecast of the multi-time-scale series (Fig. 10). For
/// the seasonal operational datasets themselves the paper prefers
/// Holt-Winters.
///
/// # Example
///
/// ```
/// use tiresias_timeseries::{Ewma, Forecaster};
///
/// let mut e = Ewma::new(0.5)?;
/// e.observe(10.0); // first observation seeds the forecast
/// e.observe(20.0);
/// assert_eq!(e.forecast(), 15.0);
/// # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    forecast: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA forecaster with smoothing rate `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] unless
    /// `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Result<Self, TimeSeriesError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "ewma alpha must be in (0, 1], got {alpha}"
            )));
        }
        Ok(Ewma { alpha, forecast: None })
    }

    /// Creates an EWMA forecaster seeded with an initial forecast value.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] unless
    /// `0 < alpha <= 1`.
    pub fn with_initial(alpha: f64, initial: f64) -> Result<Self, TimeSeriesError> {
        let mut e = Ewma::new(alpha)?;
        e.forecast = Some(initial);
        Ok(e)
    }

    /// The smoothing rate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `true` until the first observation arrives.
    pub fn is_unseeded(&self) -> bool {
        self.forecast.is_none()
    }

    /// Injects an additive bias ξ into the current forecast, modelling the
    /// estimation error a `SPLIT` operation introduces (the paper's
    /// `FE[t] = F[t] + ξ`).
    pub fn bias(&mut self, xi: f64) {
        if let Some(f) = &mut self.forecast {
            *f += xi;
        } else {
            self.forecast = Some(xi);
        }
    }
}

impl Forecaster for Ewma {
    fn forecast(&self) -> f64 {
        self.forecast.unwrap_or(0.0)
    }

    fn observe(&mut self, actual: f64) {
        self.forecast = Some(match self.forecast {
            // The first observation seeds the forecast, a standard EWMA
            // warm-up that avoids a persistent startup transient.
            None => actual,
            Some(f) => self.alpha * actual + (1.0 - self.alpha) * f,
        });
    }
}

impl LinearForecaster for Ewma {
    fn scale(&mut self, factor: f64) {
        if let Some(f) = &mut self.forecast {
            *f *= factor;
        }
    }

    fn merge(&mut self, other: &Self) -> Result<(), TimeSeriesError> {
        if (self.alpha - other.alpha).abs() > f64::EPSILON {
            return Err(TimeSeriesError::IncompatibleForecasters(format!(
                "ewma alphas differ ({} vs {})",
                self.alpha, other.alpha
            )));
        }
        self.forecast = match (self.forecast, other.forecast) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        Ok(())
    }
}

/// Closed-form relative error `RE[t+k]` of an EWMA forecast whose value at
/// time `t` was biased by `xi`, after `k` further (unbiased) observations
/// — the paper's Eq. (1)–(2), plotted in Fig. 9.
///
/// On a constant unit series (`T[i] = 1`, `F[t] = 1`) the bias decays
/// geometrically: `RE[t+k] = (1−α)^k · |ξ| / F`.
///
/// # Example
///
/// ```
/// use tiresias_timeseries::Ewma;
/// use tiresias_timeseries::stats::approx_eq;
///
/// // α = 0.5, ξ = F: the error halves every iteration.
/// let re = tiresias_timeseries::split_bias_relative_error(0.5, 1.0, 1.0, 3);
/// assert!(approx_eq(re, 0.125, 1e-12));
/// ```
pub fn split_bias_relative_error(alpha: f64, xi: f64, f: f64, k: u32) -> f64 {
    (1.0 - alpha).powi(k as i32) * xi.abs() / f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_alpha_rejected() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        assert!(Ewma::new(-0.1).is_err());
        assert!(Ewma::new(1.0).is_ok());
    }

    #[test]
    fn update_rule_matches_definition() {
        let mut e = Ewma::with_initial(0.25, 8.0).unwrap();
        e.observe(16.0);
        // 0.25*16 + 0.75*8 = 10
        assert_eq!(e.forecast(), 10.0);
    }

    #[test]
    fn first_observation_seeds() {
        let mut e = Ewma::new(0.5).unwrap();
        assert!(e.is_unseeded());
        e.observe(42.0);
        assert_eq!(e.forecast(), 42.0);
        assert!(!e.is_unseeded());
    }

    #[test]
    fn linearity_scale() {
        let mut a = Ewma::with_initial(0.5, 10.0).unwrap();
        a.scale(0.3);
        assert!((a.forecast() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linearity_merge() {
        // Model of X + model of Y == model of X+Y, stepwise.
        let xs = [1.0, 4.0, 2.0, 8.0];
        let ys = [3.0, 1.0, 5.0, 2.0];
        let mut fx = Ewma::with_initial(0.4, 1.0).unwrap();
        let mut fy = Ewma::with_initial(0.4, 2.0).unwrap();
        let mut fsum = Ewma::with_initial(0.4, 3.0).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            fx.observe(*x);
            fy.observe(*y);
            fsum.observe(x + y);
        }
        fx.merge(&fy).unwrap();
        assert!((fx.forecast() - fsum.forecast()).abs() < 1e-12);
    }

    #[test]
    fn merge_rejects_different_alpha() {
        let mut a = Ewma::new(0.5).unwrap();
        let b = Ewma::new(0.4).unwrap();
        assert!(matches!(a.merge(&b), Err(TimeSeriesError::IncompatibleForecasters(_))));
    }

    #[test]
    fn bias_decay_matches_closed_form() {
        // Simulate the paper's Fig. 9 setting: constant unit series,
        // α = 0.5, converged forecast F = 1 biased by ξ.
        for &xi in &[2.0, 1.0, 0.5] {
            let alpha = 0.5;
            let mut biased = Ewma::with_initial(alpha, 1.0 + xi).unwrap();
            let mut clean = Ewma::with_initial(alpha, 1.0).unwrap();
            for k in 1..=10u32 {
                biased.observe(1.0);
                clean.observe(1.0);
                let sim = (biased.forecast() - clean.forecast()).abs() / clean.forecast();
                let closed = split_bias_relative_error(alpha, xi, clean.forecast(), k);
                assert!((sim - closed).abs() < 1e-9, "k={k} xi={xi}: sim={sim} closed={closed}");
            }
        }
    }

    #[test]
    fn bias_error_decays_exponentially() {
        let re1 = split_bias_relative_error(0.5, 1.0, 1.0, 1);
        let re5 = split_bias_relative_error(0.5, 1.0, 1.0, 5);
        let re10 = split_bias_relative_error(0.5, 1.0, 1.0, 10);
        assert!(re1 > re5 && re5 > re10);
        assert!((re5 / re10 - 2f64.powi(5)).abs() < 1e-9);
    }
}
