use crate::error::TimeSeriesError;

/// A one-step-ahead forecasting model over a scalar time series.
///
/// The detector calls [`Forecaster::forecast`] to obtain the predicted
/// value for the upcoming timeunit, compares it with the observed count
/// (Definition 4 of the paper), then feeds the observation back with
/// [`Forecaster::observe`].
pub trait Forecaster {
    /// Predicted value for the next (not yet observed) timeunit — the
    /// paper's `F[n, 1]`.
    fn forecast(&self) -> f64;

    /// Feeds the actual value of the timeunit that just closed, advancing
    /// the model state.
    fn observe(&mut self, actual: f64);
}

/// A forecaster whose internal state is a linear function of the observed
/// series, enabling the ADA split/merge adaptations without refitting.
///
/// The paper's Lemma 2 proves the additive Holt-Winters model has this
/// property; EWMA has it trivially. Implementors must satisfy, for any
/// histories `X` and `Y`:
///
/// * `state(c · X) == c · state(X)` (so [`LinearForecaster::scale`] turns
///   a model of `X` into a model of `c · X`),
/// * `state(X + Y) == state(X) + state(Y)` (so
///   [`LinearForecaster::merge`] turns models of `X` and `Y` into a model
///   of `X + Y`).
pub trait LinearForecaster: Forecaster {
    /// Rescales the model as if every historical observation had been
    /// multiplied by `factor`. Used by the ADA `SPLIT` operation.
    fn scale(&mut self, factor: f64);

    /// Absorbs `other`, producing the model of the summed series. Used by
    /// the ADA `MERGE` operation.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::IncompatibleForecasters`] if the two
    /// models have different configurations (season length, smoothing
    /// parameters or phase) and therefore do not add componentwise.
    fn merge(&mut self, other: &Self) -> Result<(), TimeSeriesError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial mean forecaster used to exercise the trait contract.
    struct Mean {
        sum: f64,
        n: usize,
    }

    impl Forecaster for Mean {
        fn forecast(&self) -> f64 {
            if self.n == 0 {
                0.0
            } else {
                self.sum / self.n as f64
            }
        }
        fn observe(&mut self, actual: f64) {
            self.sum += actual;
            self.n += 1;
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut m: Box<dyn Forecaster> = Box::new(Mean { sum: 0.0, n: 0 });
        m.observe(2.0);
        m.observe(4.0);
        assert_eq!(m.forecast(), 3.0);
    }
}
