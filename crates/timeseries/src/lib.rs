//! Time-series substrate for Tiresias.
//!
//! Every heavy hitter tracked by Tiresias carries a bounded history of
//! observed counts plus a seasonal forecasting model. This crate provides
//! those pieces:
//!
//! * [`Series`] — a fixed-capacity ring buffer of `f64` samples with the
//!   elementwise linear operations (`scale`, `add`) that the ADA
//!   algorithm's split/merge adaptations rely on,
//! * [`Ewma`] — exponentially weighted moving-average forecasting,
//!   including the closed-form biased-split error decay of the paper's
//!   Eq. (1)–(2) / Fig. 9,
//! * [`HoltWinters`] / [`MultiSeasonalHoltWinters`] — the additive
//!   Holt-Winters seasonal model of §VI, with the 2υ-cycle initialisation
//!   and the linearity operations justified by the paper's Lemma 2,
//! * [`fit_holt_winters`] — offline mean-squared-error grid search for the
//!   smoothing parameters (§VII "System parameters"),
//! * [`MultiScaleSeries`] — the geometric multi-time-scale series of
//!   §V-B6 (Fig. 10) with amortised-Θ(1) updates,
//! * [`stats`] — small numeric helpers (mean, variance, quantiles,
//!   normalisation) shared across the workspace.
//!
//! # Example
//!
//! ```
//! use tiresias_timeseries::{Forecaster, HoltWinters};
//!
//! // A 4-sample season observed for two full cycles initialises the model.
//! let history = [10.0, 20.0, 30.0, 20.0, 12.0, 22.0, 32.0, 22.0];
//! let mut hw = HoltWinters::from_history(0.5, 0.1, 0.2, 4, &history)?;
//! let f = hw.forecast();
//! assert!((f - 11.0).abs() < 5.0, "forecast tracks the seasonal shape");
//! hw.observe(14.0);
//! # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brutlag;
mod error;
mod ewma;
mod fit;
mod forecast;
mod holt_winters;
mod multiscale;
mod series;
pub mod stats;

pub use brutlag::{BandVerdict, BrutlagBand};
pub use error::TimeSeriesError;
pub use ewma::{split_bias_relative_error, Ewma};
pub use fit::{fit_holt_winters, FitReport, HwParams, ParamGrid};
pub use forecast::{Forecaster, LinearForecaster};
pub use holt_winters::{HoltWinters, MultiSeasonalHoltWinters, SeasonalFactor};
pub use multiscale::MultiScaleSeries;
pub use series::Series;
