//! Small numeric helpers shared across the workspace: means, variances,
//! quantiles, normalisation, and approximate float comparison.
//!
//! These are deliberately simple, allocation-light routines — enough for
//! the control-chart baseline, the CCDF measurements (Fig. 1) and the
//! evaluation metrics, without pulling in a statistics dependency.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Mean squared error between two equal-length slices; `None` on length
/// mismatch or empty input.
pub fn mse(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    Some(a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64)
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between the two
/// straddling order statistics; `None` for an empty slice or `q` outside
/// `[0, 1]`.
///
/// Selects rather than sorts — O(n) expected instead of O(n log n) —
/// with output identical to interpolating on a fully sorted copy (ties
/// included: equal values interpolate to the same value regardless of
/// which duplicate lands on which side of the selection pivot).
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("no NaN in quantile input");
    let mut scratch: Vec<f64> = xs.to_vec();
    let pos = q * (scratch.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    let (_, &mut lo_val, above) = scratch.select_nth_unstable_by(lo, cmp);
    if frac == 0.0 {
        // Also covers lo == len−1, where `above` is empty.
        return Some(lo_val);
    }
    // The (lo+1)-th order statistic is the minimum of the partition
    // above the selected element.
    let hi_val = above.iter().copied().min_by(cmp).expect("frac > 0 implies lo < len-1");
    Some(lo_val * (1.0 - frac) + hi_val * frac)
}

/// Divides every sample by the maximum, mapping the series into `[0, 1]`
/// (the normalisation of the paper's Fig. 2). Returns an empty vector for
/// empty input; a series with max 0 is returned unchanged.
pub fn normalize_by_max(xs: &[f64]) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    if xs.is_empty() || max <= 0.0 {
        return xs.to_vec();
    }
    xs.iter().map(|x| x / max).collect()
}

/// `true` iff `a` and `b` differ by at most `tol`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Complementary cumulative distribution function evaluated over `values`
/// at each of the `points`: fraction of values **≥** the point.
///
/// This is the measurement behind the paper's Fig. 1 (CCDF of normalized
/// appearance counts across nodes and time units).
pub fn ccdf(values: &[f64], points: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; points.len()];
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in ccdf input"));
    points
        .iter()
        .map(|&p| {
            let idx = sorted.partition_point(|&v| v < p);
            (sorted.len() - idx) as f64 / sorted.len() as f64
        })
        .collect()
}

/// Logarithmically spaced points between `lo` and `hi` (inclusive),
/// useful as CCDF evaluation grid on log-log plots.
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi <= lo`, or `n < 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "invalid log_space arguments");
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..n).map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn mse_checks_lengths() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), Some(2.0));
        assert_eq!(mse(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(mse(&[], &[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, 2.0), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(quantile(&a, 0.5), quantile(&b, 0.5));
    }

    #[test]
    fn quantile_matches_full_sort_reference() {
        // The selection-based implementation must agree bit-for-bit with
        // interpolation on a fully sorted copy — ties and all q included.
        let xs: Vec<f64> = (0..257).map(|i| ((i * 7919) % 101) as f64 * 0.5).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let pos = q * (sorted.len() - 1) as f64;
            let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
            let frac = pos - lo as f64;
            let reference = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
            assert_eq!(quantile(&xs, q), Some(reference), "q = {q}");
        }
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let v = normalize_by_max(&[2.0, 8.0, 4.0]);
        assert_eq!(v, vec![0.25, 1.0, 0.5]);
        assert_eq!(normalize_by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert!(normalize_by_max(&[]).is_empty());
    }

    #[test]
    fn ccdf_fractions() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let c = ccdf(&values, &[0.5, 2.0, 3.5, 10.0]);
        assert_eq!(c, vec![1.0, 0.75, 0.25, 0.0]);
        assert_eq!(ccdf(&[], &[1.0]), vec![0.0]);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let values: Vec<f64> = (1..100).map(|i| (i % 13) as f64).collect();
        let pts = log_space(0.1, 20.0, 16);
        let c = ccdf(&values, &pts);
        for w in c.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn log_space_endpoints() {
        let v = log_space(0.01, 1.0, 5);
        assert!(approx_eq(v[0], 0.01, 1e-12));
        assert!(approx_eq(*v.last().unwrap(), 1.0, 1e-12));
        for w in v.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "invalid log_space")]
    fn log_space_rejects_bad_input() {
        let _ = log_space(-1.0, 1.0, 5);
    }
}
