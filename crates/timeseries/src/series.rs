use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;

/// A fixed-capacity ring buffer of `f64` samples, ordered oldest → newest.
///
/// This is the `n.actual` / `n.forecast` array bound to every heavy hitter
/// in the paper's ADA algorithm: appending the newest timeunit's value
/// evicts the oldest once the window of ℓ timeunits is full, and the
/// split/merge adaptations act on it with elementwise linear operations
/// ([`Series::scale`], [`Series::add_assign_series`]).
///
/// # Example
///
/// ```
/// use tiresias_timeseries::Series;
///
/// let mut s = Series::with_capacity(3);
/// s.push(1.0);
/// s.push(2.0);
/// s.push(3.0);
/// assert_eq!(s.push(4.0), Some(1.0)); // oldest evicted
/// assert_eq!(s.latest(), Some(4.0));
/// assert_eq!(s.from_latest(2), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    data: VecDeque<f64>,
    capacity: usize,
}

impl Series {
    /// Creates an empty series that holds at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        Series { data: VecDeque::with_capacity(capacity), capacity }
    }

    /// Creates a series pre-filled with `values`, keeping only the newest
    /// `capacity` samples if `values` is longer.
    pub fn from_values(capacity: usize, values: &[f64]) -> Self {
        let mut s = Series::with_capacity(capacity);
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Creates a full series of `capacity` zeros.
    pub fn zeros(capacity: usize) -> Self {
        Series { data: std::iter::repeat_n(0.0, capacity).collect(), capacity }
    }

    /// Maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` iff the series holds `capacity` samples.
    pub fn is_full(&self) -> bool {
        self.data.len() == self.capacity
    }

    /// Appends the newest sample; returns the evicted oldest sample if the
    /// series was full.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let evicted = if self.data.len() == self.capacity { self.data.pop_front() } else { None };
        self.data.push_back(value);
        evicted
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<f64> {
        self.data.back().copied()
    }

    /// The oldest sample.
    pub fn oldest(&self) -> Option<f64> {
        self.data.front().copied()
    }

    /// The sample `k` steps back from the newest; `from_latest(1)` is the
    /// newest sample itself (the paper's `T[n, 1]` indexing).
    pub fn from_latest(&self, k: usize) -> Option<f64> {
        if k == 0 || k > self.data.len() {
            return None;
        }
        self.data.get(self.data.len() - k).copied()
    }

    /// The sample at position `i` counting from the oldest (0-based).
    pub fn get(&self, i: usize) -> Option<f64> {
        self.data.get(i).copied()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// Copies the samples into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.iter().copied().collect()
    }

    /// Multiplies every sample by `factor` (the ADA split operation's
    /// elementwise scale).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds `other` elementwise (the ADA merge operation).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::LengthMismatch`] if the two series hold
    /// different numbers of samples.
    pub fn add_assign_series(&mut self, other: &Series) -> Result<(), TimeSeriesError> {
        if self.len() != other.len() {
            return Err(TimeSeriesError::LengthMismatch { left: self.len(), right: other.len() });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Subtracts `other` elementwise (used by the reference-time-series
    /// correction of §V-B5).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::LengthMismatch`] if the two series hold
    /// different numbers of samples.
    pub fn sub_assign_series(&mut self, other: &Series) -> Result<(), TimeSeriesError> {
        if self.len() != other.len() {
            return Err(TimeSeriesError::LengthMismatch { left: self.len(), right: other.len() });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Series {
        let mut s = self.clone();
        s.scale(factor);
        s
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.sum() / self.data.len() as f64)
        }
    }

    /// Mean absolute difference against `other`
    /// (`mean |self[i] − other[i]|`), the error metric of the paper's
    /// Fig. 12.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::LengthMismatch`] if lengths differ.
    pub fn mean_abs_error(&self, other: &Series) -> Result<f64, TimeSeriesError> {
        if self.len() != other.len() {
            return Err(TimeSeriesError::LengthMismatch { left: self.len(), right: other.len() });
        }
        if self.is_empty() {
            return Ok(0.0);
        }
        let total: f64 = self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).sum();
        Ok(total / self.len() as f64)
    }
}

impl Extend<f64> for Series {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a> IntoIterator for &'a Series {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::collections::vec_deque::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_when_full() {
        let mut s = Series::with_capacity(2);
        assert_eq!(s.push(1.0), None);
        assert_eq!(s.push(2.0), None);
        assert_eq!(s.push(3.0), Some(1.0));
        assert_eq!(s.to_vec(), vec![2.0, 3.0]);
        assert!(s.is_full());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Series::with_capacity(0);
    }

    #[test]
    fn from_latest_indexing_matches_paper() {
        let s = Series::from_values(4, &[10.0, 20.0, 30.0]);
        assert_eq!(s.from_latest(1), Some(30.0)); // T[n, 1] = newest
        assert_eq!(s.from_latest(3), Some(10.0));
        assert_eq!(s.from_latest(0), None);
        assert_eq!(s.from_latest(4), None);
    }

    #[test]
    fn from_values_keeps_newest() {
        let s = Series::from_values(2, &[1.0, 2.0, 3.0]);
        assert_eq!(s.to_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn scale_and_add_are_elementwise() {
        let mut a = Series::from_values(3, &[1.0, 2.0, 3.0]);
        let b = Series::from_values(3, &[10.0, 10.0, 10.0]);
        a.scale(2.0);
        a.add_assign_series(&b).unwrap();
        assert_eq!(a.to_vec(), vec![12.0, 14.0, 16.0]);
        a.sub_assign_series(&b).unwrap();
        assert_eq!(a.to_vec(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut a = Series::from_values(3, &[1.0, 2.0]);
        let b = Series::from_values(3, &[1.0]);
        assert!(matches!(
            a.add_assign_series(&b),
            Err(TimeSeriesError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn split_merge_round_trip_preserves_series() {
        // Splitting into ratios that sum to 1 and merging back must be the
        // identity — the invariant ADA's adaptations rely on.
        let orig = Series::from_values(4, &[4.0, 8.0, 12.0, 16.0]);
        let part1 = orig.scaled(0.25);
        let part2 = orig.scaled(0.75);
        let mut merged = part1;
        merged.add_assign_series(&part2).unwrap();
        for (a, b) in merged.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_abs_error() {
        let a = Series::from_values(3, &[1.0, 2.0, 3.0]);
        let b = Series::from_values(3, &[2.0, 2.0, 5.0]);
        assert!((a.mean_abs_error(&b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(a.mean_abs_error(&a).unwrap(), 0.0);
    }

    #[test]
    fn stats_helpers() {
        let s = Series::from_values(4, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(Series::with_capacity(1).mean(), None);
    }

    #[test]
    fn zeros_is_full() {
        let s = Series::zeros(5);
        assert!(s.is_full());
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn extend_pushes_in_order() {
        let mut s = Series::with_capacity(10);
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0]);
    }
}
