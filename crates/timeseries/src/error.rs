use std::error::Error;
use std::fmt;

/// Errors produced by time-series construction and forecasting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimeSeriesError {
    /// An elementwise operation was applied to series of different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// Two forecasters with incompatible configuration (season length,
    /// smoothing parameters, phase) were merged.
    IncompatibleForecasters(String),
    /// A model required more history than was provided.
    InsufficientHistory {
        /// Samples required.
        needed: usize,
        /// Samples provided.
        got: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::LengthMismatch { left, right } => {
                write!(f, "series lengths differ ({left} vs {right})")
            }
            TimeSeriesError::IncompatibleForecasters(why) => {
                write!(f, "forecasters cannot be combined: {why}")
            }
            TimeSeriesError::InsufficientHistory { needed, got } => {
                write!(f, "model needs {needed} history samples but got {got}")
            }
            TimeSeriesError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<TimeSeriesError>();
    }

    #[test]
    fn display_messages_are_nonempty() {
        let errs = [
            TimeSeriesError::LengthMismatch { left: 1, right: 2 },
            TimeSeriesError::IncompatibleForecasters("x".into()),
            TimeSeriesError::InsufficientHistory { needed: 8, got: 2 },
            TimeSeriesError::InvalidParameter("alpha".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
