use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;
use crate::forecast::{Forecaster, LinearForecaster};

/// Additive Holt-Winters seasonal forecaster (§VI of the paper).
///
/// The model decomposes a series `T[t]` into level `L`, trend `B` and a
/// seasonal component `S` of period `υ`:
///
/// ```text
/// L[t] = α(T[t] − S[t−υ]) + (1−α)(L[t−1] + B[t−1])
/// B[t] = β(L[t] − L[t−1]) + (1−β)B[t−1]
/// S[t] = γ(T[t] − L[t]) + (1−γ)S[t−υ]
/// G[t] = L[t−1] + B[t−1] + S[t−υ]        (one-step forecast)
/// ```
///
/// Because every update is linear in the observations, the model state of
/// a summed series is the sum of the states (the paper's **Lemma 2**) —
/// which is exactly why ADA can `SPLIT`/`MERGE` heavy hitters by scaling
/// and adding forecaster state instead of refitting. Those operations are
/// exposed via [`LinearForecaster`].
///
/// # Example
///
/// ```
/// use tiresias_timeseries::{Forecaster, HoltWinters};
///
/// // Two cycles of a υ=3 season initialise the model.
/// let hist = [1.0, 5.0, 9.0, 1.0, 5.0, 9.0];
/// let mut hw = HoltWinters::from_history(0.3, 0.05, 0.2, 3, &hist)?;
/// // Perfectly periodic history ⇒ near-exact next-step forecast.
/// assert!((hw.forecast() - 1.0).abs() < 1.0);
/// hw.observe(1.2);
/// # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    season: usize,
    level: f64,
    trend: f64,
    /// Seasonal components, indexed by phase `t mod υ`.
    seasonal: Vec<f64>,
    /// Phase of the *next* observation.
    phase: usize,
}

fn check_rate(name: &str, v: f64) -> Result<(), TimeSeriesError> {
    if !(0.0..=1.0).contains(&v) {
        return Err(TimeSeriesError::InvalidParameter(format!(
            "{name} must be in [0, 1], got {v}"
        )));
    }
    Ok(())
}

impl HoltWinters {
    /// Creates a model with explicit initial state.
    ///
    /// `seasonal` must contain exactly `season` components; the first one
    /// is the component of the next observation.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] if a smoothing rate
    /// is outside `[0, 1]`, the season is zero, or `seasonal` has the
    /// wrong length.
    pub fn new(
        alpha: f64,
        beta: f64,
        gamma: f64,
        level: f64,
        trend: f64,
        seasonal: Vec<f64>,
    ) -> Result<Self, TimeSeriesError> {
        check_rate("alpha", alpha)?;
        check_rate("beta", beta)?;
        check_rate("gamma", gamma)?;
        if seasonal.is_empty() {
            return Err(TimeSeriesError::InvalidParameter(
                "holt-winters season length must be positive".into(),
            ));
        }
        Ok(HoltWinters {
            alpha,
            beta,
            gamma,
            season: seasonal.len(),
            level,
            trend,
            seasonal,
            phase: 0,
        })
    }

    /// Initialises the model from at least two full seasonal cycles of
    /// history (the paper's §VI initialisation), then replays any samples
    /// beyond the first `2υ` through [`Forecaster::observe`].
    ///
    /// Starting values (all linear in the history, preserving Lemma 2):
    ///
    /// * `L₀` — mean of the first two cycles,
    /// * `B₀` — (mean of 2nd cycle − mean of 1st cycle) / υ,
    /// * `S₀[j]` — average over the two cycles of `T[j] − L₀`.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InsufficientHistory`] when fewer than
    /// `2υ` samples are supplied and
    /// [`TimeSeriesError::InvalidParameter`] for invalid rates or a zero
    /// season.
    pub fn from_history(
        alpha: f64,
        beta: f64,
        gamma: f64,
        season: usize,
        history: &[f64],
    ) -> Result<Self, TimeSeriesError> {
        if season == 0 {
            return Err(TimeSeriesError::InvalidParameter(
                "holt-winters season length must be positive".into(),
            ));
        }
        if history.len() < 2 * season {
            return Err(TimeSeriesError::InsufficientHistory {
                needed: 2 * season,
                got: history.len(),
            });
        }
        let (first, rest) = history.split_at(season);
        let (second, tail) = rest.split_at(season);
        let mean1: f64 = first.iter().sum::<f64>() / season as f64;
        let mean2: f64 = second.iter().sum::<f64>() / season as f64;
        let level = (mean1 + mean2) / 2.0;
        let trend = (mean2 - mean1) / season as f64;
        let seasonal: Vec<f64> =
            (0..season).map(|j| ((first[j] - level) + (second[j] - level)) / 2.0).collect();
        let mut hw = HoltWinters::new(alpha, beta, gamma, level, trend, seasonal)?;
        for &v in tail {
            hw.observe(v);
        }
        Ok(hw)
    }

    /// The seasonal period υ.
    pub fn season_length(&self) -> usize {
        self.season
    }

    /// The phase (season slot) of the *next* observation.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Sets the phase of the next observation.
    ///
    /// Heavy hitter trackers use this to align freshly created models
    /// with the global timeunit counter so that models created at
    /// different times can still be merged (merging requires equal
    /// phases).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] if `phase >= υ`.
    pub fn set_phase(&mut self, phase: usize) -> Result<(), TimeSeriesError> {
        if phase >= self.season {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "phase {phase} out of range for season {}",
                self.season
            )));
        }
        self.phase = phase;
        Ok(())
    }

    /// Current level component `L`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current trend component `B`.
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Seasonal components indexed by phase.
    pub fn seasonal(&self) -> &[f64] {
        &self.seasonal
    }

    /// Smoothing rates `(α, β, γ)`.
    pub fn rates(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// Forecast `h ≥ 1` steps ahead: `L + h·B + S[phase of t+h]`.
    pub fn forecast_ahead(&self, h: usize) -> f64 {
        let phase = (self.phase + h - 1) % self.season;
        self.level + h as f64 * self.trend + self.seasonal[phase]
    }

    fn compatible(&self, other: &Self) -> Result<(), TimeSeriesError> {
        if self.season != other.season {
            return Err(TimeSeriesError::IncompatibleForecasters(format!(
                "season lengths differ ({} vs {})",
                self.season, other.season
            )));
        }
        if self.phase != other.phase {
            return Err(TimeSeriesError::IncompatibleForecasters(format!(
                "seasonal phases differ ({} vs {})",
                self.phase, other.phase
            )));
        }
        let (a, b, g) = (self.alpha, self.beta, self.gamma);
        if (a - other.alpha).abs() > f64::EPSILON
            || (b - other.beta).abs() > f64::EPSILON
            || (g - other.gamma).abs() > f64::EPSILON
        {
            return Err(TimeSeriesError::IncompatibleForecasters("smoothing rates differ".into()));
        }
        Ok(())
    }
}

impl Forecaster for HoltWinters {
    fn forecast(&self) -> f64 {
        self.level + self.trend + self.seasonal[self.phase]
    }

    fn observe(&mut self, actual: f64) {
        let s_old = self.seasonal[self.phase];
        let l_old = self.level;
        self.level = self.alpha * (actual - s_old) + (1.0 - self.alpha) * (l_old + self.trend);
        self.trend = self.beta * (self.level - l_old) + (1.0 - self.beta) * self.trend;
        self.seasonal[self.phase] = self.gamma * (actual - self.level) + (1.0 - self.gamma) * s_old;
        self.phase = (self.phase + 1) % self.season;
    }
}

impl LinearForecaster for HoltWinters {
    fn scale(&mut self, factor: f64) {
        self.level *= factor;
        self.trend *= factor;
        self.seasonal.iter_mut().for_each(|s| *s *= factor);
    }

    fn merge(&mut self, other: &Self) -> Result<(), TimeSeriesError> {
        self.compatible(other)?;
        self.level += other.level;
        self.trend += other.trend;
        for (s, o) in self.seasonal.iter_mut().zip(other.seasonal.iter()) {
            *s += *o;
        }
        Ok(())
    }
}

/// One seasonal factor of a [`MultiSeasonalHoltWinters`] model: a period
/// and its relative weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeasonalFactor {
    /// Seasonal period in timeunits (e.g. 96 for a day of 15-minute
    /// units).
    pub period: usize,
    /// Relative weight of this factor; the paper's ξ for the daily factor
    /// and 1−ξ for the weekly one.
    pub weight: f64,
}

impl SeasonalFactor {
    /// Creates a factor.
    pub fn new(period: usize, weight: f64) -> Self {
        SeasonalFactor { period, weight }
    }
}

/// Additive Holt-Winters with several linearly combined seasonal factors.
///
/// The paper's CCD evaluation uses two factors — daily and weekly — with
/// combined seasonal component `S = ξ·S_day + (1−ξ)·S_week`, where ξ is
/// the ratio of FFT magnitudes at the two periods (§VII, "System
/// parameters"). Each factor keeps its own component array; the level and
/// trend updates see the weighted combination.
///
/// All state remains linear in the observations, so the model still
/// supports [`LinearForecaster`] and Lemma 2 carries over.
///
/// # Example
///
/// ```
/// use tiresias_timeseries::{Forecaster, MultiSeasonalHoltWinters, SeasonalFactor};
///
/// let factors = vec![SeasonalFactor::new(4, 0.76), SeasonalFactor::new(8, 0.24)];
/// let hist: Vec<f64> = (0..16).map(|t| (t % 4) as f64 + 0.5 * (t % 8) as f64).collect();
/// let mut hw = MultiSeasonalHoltWinters::from_history(0.3, 0.05, 0.2, &factors, &hist)?;
/// hw.observe(1.0);
/// let _ = hw.forecast();
/// # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSeasonalHoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    level: f64,
    trend: f64,
    factors: Vec<SeasonalFactor>,
    /// One component array per factor, each of its own period.
    seasonal: Vec<Vec<f64>>,
    /// One phase cursor per factor.
    phase: Vec<usize>,
}

impl MultiSeasonalHoltWinters {
    /// Creates a model with explicit level and trend, zero seasonal
    /// components and zero phases.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] for invalid rates,
    /// an empty factor list, or a zero period.
    pub fn new(
        alpha: f64,
        beta: f64,
        gamma: f64,
        factors: &[SeasonalFactor],
        level: f64,
        trend: f64,
    ) -> Result<Self, TimeSeriesError> {
        check_rate("alpha", alpha)?;
        check_rate("beta", beta)?;
        check_rate("gamma", gamma)?;
        if factors.is_empty() {
            return Err(TimeSeriesError::InvalidParameter(
                "at least one seasonal factor is required".into(),
            ));
        }
        if factors.iter().any(|f| f.period == 0) {
            return Err(TimeSeriesError::InvalidParameter(
                "seasonal periods must be positive".into(),
            ));
        }
        Ok(MultiSeasonalHoltWinters {
            alpha,
            beta,
            gamma,
            level,
            trend,
            factors: factors.to_vec(),
            seasonal: factors.iter().map(|f| vec![0.0; f.period]).collect(),
            phase: vec![0; factors.len()],
        })
    }

    /// Aligns every factor's phase with a global timeunit counter: the
    /// next observation is treated as timeunit `global_units`.
    pub fn set_phases(&mut self, global_units: usize) {
        for (ph, f) in self.phase.iter_mut().zip(self.factors.iter()) {
            *ph = global_units % f.period;
        }
    }

    /// Initialises the model from history covering at least two cycles of
    /// the *longest* factor, then replays the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] for invalid rates,
    /// an empty factor list, or a zero period, and
    /// [`TimeSeriesError::InsufficientHistory`] when the history is
    /// shorter than twice the longest period.
    pub fn from_history(
        alpha: f64,
        beta: f64,
        gamma: f64,
        factors: &[SeasonalFactor],
        history: &[f64],
    ) -> Result<Self, TimeSeriesError> {
        check_rate("alpha", alpha)?;
        check_rate("beta", beta)?;
        check_rate("gamma", gamma)?;
        if factors.is_empty() {
            return Err(TimeSeriesError::InvalidParameter(
                "at least one seasonal factor is required".into(),
            ));
        }
        if factors.iter().any(|f| f.period == 0) {
            return Err(TimeSeriesError::InvalidParameter(
                "seasonal periods must be positive".into(),
            ));
        }
        let longest = factors.iter().map(|f| f.period).max().expect("non-empty");
        if history.len() < 2 * longest {
            return Err(TimeSeriesError::InsufficientHistory {
                needed: 2 * longest,
                got: history.len(),
            });
        }
        let init = &history[..2 * longest];
        let level: f64 = init.iter().sum::<f64>() / init.len() as f64;
        let half = longest;
        let mean1: f64 = init[..half].iter().sum::<f64>() / half as f64;
        let mean2: f64 = init[half..].iter().sum::<f64>() / half as f64;
        let trend = (mean2 - mean1) / half as f64;
        // Per-factor components: average deviation from the level at each
        // phase of that factor's period, linear in the history.
        let mut seasonal = Vec::with_capacity(factors.len());
        for f in factors {
            let mut comp = vec![0.0; f.period];
            let mut count = vec![0usize; f.period];
            for (t, &v) in init.iter().enumerate() {
                comp[t % f.period] += v - level;
                count[t % f.period] += 1;
            }
            for (c, n) in comp.iter_mut().zip(count.iter()) {
                if *n > 0 {
                    *c /= *n as f64;
                }
            }
            seasonal.push(comp);
        }
        let mut hw = MultiSeasonalHoltWinters {
            alpha,
            beta,
            gamma,
            level,
            trend,
            factors: factors.to_vec(),
            seasonal,
            phase: factors.iter().map(|f| (2 * longest) % f.period).collect(),
        };
        for &v in &history[2 * longest..] {
            hw.observe(v);
        }
        Ok(hw)
    }

    /// The seasonal factors.
    pub fn factors(&self) -> &[SeasonalFactor] {
        &self.factors
    }

    /// Current level component.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current trend component.
    pub fn trend(&self) -> f64 {
        self.trend
    }

    fn combined_seasonal(&self) -> f64 {
        self.factors
            .iter()
            .zip(self.seasonal.iter())
            .zip(self.phase.iter())
            .map(|((f, comp), &ph)| f.weight * comp[ph])
            .sum()
    }
}

impl Forecaster for MultiSeasonalHoltWinters {
    fn forecast(&self) -> f64 {
        self.level + self.trend + self.combined_seasonal()
    }

    fn observe(&mut self, actual: f64) {
        let s_comb = self.combined_seasonal();
        let l_old = self.level;
        self.level = self.alpha * (actual - s_comb) + (1.0 - self.alpha) * (l_old + self.trend);
        self.trend = self.beta * (self.level - l_old) + (1.0 - self.beta) * self.trend;
        // Each factor absorbs the full residual at its own phase; the
        // factor weights keep the combination calibrated.
        let residual = actual - self.level;
        for (comp, &ph) in self.seasonal.iter_mut().zip(self.phase.iter()) {
            comp[ph] = self.gamma * residual + (1.0 - self.gamma) * comp[ph];
        }
        for (ph, f) in self.phase.iter_mut().zip(self.factors.iter()) {
            *ph = (*ph + 1) % f.period;
        }
    }
}

impl LinearForecaster for MultiSeasonalHoltWinters {
    fn scale(&mut self, factor: f64) {
        self.level *= factor;
        self.trend *= factor;
        for comp in &mut self.seasonal {
            comp.iter_mut().for_each(|s| *s *= factor);
        }
    }

    fn merge(&mut self, other: &Self) -> Result<(), TimeSeriesError> {
        if self.factors != other.factors || self.phase != other.phase {
            return Err(TimeSeriesError::IncompatibleForecasters(
                "multi-seasonal factor configurations differ".into(),
            ));
        }
        if (self.alpha - other.alpha).abs() > f64::EPSILON
            || (self.beta - other.beta).abs() > f64::EPSILON
            || (self.gamma - other.gamma).abs() > f64::EPSILON
        {
            return Err(TimeSeriesError::IncompatibleForecasters("smoothing rates differ".into()));
        }
        self.level += other.level;
        self.trend += other.trend;
        for (mine, theirs) in self.seasonal.iter_mut().zip(other.seasonal.iter()) {
            for (s, o) in mine.iter_mut().zip(theirs.iter()) {
                *s += *o;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(season: usize, cycles: usize) -> Vec<f64> {
        (0..season * cycles).map(|t| 10.0 + 5.0 * (t % season) as f64).collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HoltWinters::from_history(1.5, 0.1, 0.1, 4, &periodic(4, 2)).is_err());
        assert!(HoltWinters::from_history(0.5, -0.1, 0.1, 4, &periodic(4, 2)).is_err());
        assert!(HoltWinters::from_history(0.5, 0.1, 0.1, 0, &[]).is_err());
        assert!(matches!(
            HoltWinters::from_history(0.5, 0.1, 0.1, 4, &[1.0; 7]),
            Err(TimeSeriesError::InsufficientHistory { needed: 8, got: 7 })
        ));
    }

    #[test]
    fn perfectly_periodic_series_forecasts_exactly() {
        let hist = periodic(4, 2);
        let mut hw = HoltWinters::from_history(0.5, 0.1, 0.3, 4, &hist).unwrap();
        // Continue the periodic pattern; forecasts should stay accurate.
        for t in 8..24 {
            let actual = 10.0 + 5.0 * (t % 4) as f64;
            let f = hw.forecast();
            assert!((f - actual).abs() < 1.0, "t={t}: forecast {f} vs actual {actual}");
            hw.observe(actual);
        }
    }

    #[test]
    fn trend_is_tracked() {
        // Linear ramp with no seasonality: forecast should follow.
        let hist: Vec<f64> = (0..8).map(|t| t as f64).collect();
        let mut hw = HoltWinters::from_history(0.8, 0.8, 0.0, 4, &hist).unwrap();
        for t in 8..40 {
            hw.observe(t as f64);
        }
        let f = hw.forecast();
        // The seasonal init absorbs part of the ramp, so allow a wider
        // band — the point is that the trend keeps the forecast close to
        // the next ramp value rather than lagging at the level.
        assert!((f - 40.0).abs() < 5.0, "forecast {f} should be near 40");
    }

    #[test]
    fn update_equations_match_hand_computation() {
        let mut hw = HoltWinters::new(0.5, 0.4, 0.3, 10.0, 1.0, vec![2.0, -2.0]).unwrap();
        // Forecast = L + B + S[0] = 13
        assert_eq!(hw.forecast(), 13.0);
        hw.observe(14.0);
        // L' = 0.5*(14-2) + 0.5*(10+1) = 11.5
        // B' = 0.4*(11.5-10) + 0.6*1 = 1.2
        // S[0]' = 0.3*(14-11.5) + 0.7*2 = 2.15
        assert!((hw.level() - 11.5).abs() < 1e-12);
        assert!((hw.trend() - 1.2).abs() < 1e-12);
        assert!((hw.seasonal()[0] - 2.15).abs() < 1e-12);
        // Next forecast uses S[1]: 11.5 + 1.2 - 2 = 10.7
        assert!((hw.forecast() - 10.7).abs() < 1e-12);
    }

    #[test]
    fn lemma2_additivity_holds_stepwise() {
        // Holt-Winters linearity (the paper's Lemma 2): the model of a
        // summed series equals the sum of the models at every step.
        let season = 3;
        let xs: Vec<f64> = (0..30).map(|t| 5.0 + (t % 3) as f64).collect();
        let ys: Vec<f64> = (0..30).map(|t| 2.0 + ((t + 1) % 3) as f64 * 2.0).collect();
        let sum: Vec<f64> = xs.iter().zip(ys.iter()).map(|(a, b)| a + b).collect();

        let mut fx = HoltWinters::from_history(0.4, 0.2, 0.3, season, &xs[..6]).unwrap();
        let mut fy = HoltWinters::from_history(0.4, 0.2, 0.3, season, &ys[..6]).unwrap();
        let mut fs = HoltWinters::from_history(0.4, 0.2, 0.3, season, &sum[..6]).unwrap();

        for t in 6..30 {
            assert!(
                (fx.forecast() + fy.forecast() - fs.forecast()).abs() < 1e-9,
                "additivity violated at t={t}"
            );
            fx.observe(xs[t]);
            fy.observe(ys[t]);
            fs.observe(sum[t]);
        }
        fx.merge(&fy).unwrap();
        assert!((fx.forecast() - fs.forecast()).abs() < 1e-9);
    }

    #[test]
    fn scale_commutes_with_observe() {
        // scale(c) then observe(c·x) == observe(x) then scale(c)
        let hist = periodic(4, 2);
        let c = 0.37;
        let mut a = HoltWinters::from_history(0.5, 0.2, 0.3, 4, &hist).unwrap();
        let mut b = a.clone();
        a.scale(c);
        a.observe(c * 42.0);
        b.observe(42.0);
        b.scale(c);
        assert!((a.forecast() - b.forecast()).abs() < 1e-9);
        assert!((a.level() - b.level()).abs() < 1e-9);
    }

    #[test]
    fn merge_rejects_incompatible() {
        let hist = periodic(4, 2);
        let mut a = HoltWinters::from_history(0.5, 0.2, 0.3, 4, &hist).unwrap();
        let b = HoltWinters::from_history(0.5, 0.2, 0.3, 2, &hist).unwrap();
        assert!(a.merge(&b).is_err());
        let mut c = HoltWinters::from_history(0.5, 0.2, 0.3, 4, &hist).unwrap();
        let mut d = c.clone();
        d.observe(1.0); // phase mismatch
        assert!(c.merge(&d).is_err());
    }

    #[test]
    fn forecast_ahead_uses_future_phase() {
        let hw = HoltWinters::new(0.5, 0.1, 0.1, 10.0, 1.0, vec![1.0, -1.0]).unwrap();
        assert_eq!(hw.forecast_ahead(1), hw.forecast());
        // h=2: level + 2·trend + S[1] = 10 + 2 − 1 = 11
        assert_eq!(hw.forecast_ahead(2), 11.0);
    }

    #[test]
    fn multi_seasonal_tracks_two_periods() {
        // Signal = daily (period 6) + weekly (period 12) components.
        let f = vec![SeasonalFactor::new(6, 0.7), SeasonalFactor::new(12, 0.3)];
        let signal = |t: usize| {
            20.0 + 6.0 * ((t % 6) as f64 / 6.0 * std::f64::consts::TAU).sin()
                + 3.0 * ((t % 12) as f64 / 12.0 * std::f64::consts::TAU).sin()
        };
        let hist: Vec<f64> = (0..48).map(signal).collect();
        let mut hw = MultiSeasonalHoltWinters::from_history(0.3, 0.02, 0.4, &f, &hist).unwrap();
        let mut err = 0.0;
        for t in 48..96 {
            let a = signal(t);
            err += (hw.forecast() - a).abs();
            hw.observe(a);
        }
        let mean_err = err / 48.0;
        // Signal peak-to-peak amplitude is 18; a mean absolute error
        // under 2.5 means both periodic components are being tracked.
        assert!(mean_err < 2.5, "mean abs error {mean_err} too large");
    }

    #[test]
    fn multi_seasonal_additivity() {
        let f = vec![SeasonalFactor::new(4, 0.6), SeasonalFactor::new(8, 0.4)];
        let xs: Vec<f64> = (0..32).map(|t| 3.0 + (t % 4) as f64).collect();
        let ys: Vec<f64> = (0..32).map(|t| 1.0 + (t % 8) as f64 * 0.5).collect();
        let sum: Vec<f64> = xs.iter().zip(ys.iter()).map(|(a, b)| a + b).collect();
        let mut fx = MultiSeasonalHoltWinters::from_history(0.4, 0.1, 0.3, &f, &xs[..16]).unwrap();
        let mut fy = MultiSeasonalHoltWinters::from_history(0.4, 0.1, 0.3, &f, &ys[..16]).unwrap();
        let mut fs = MultiSeasonalHoltWinters::from_history(0.4, 0.1, 0.3, &f, &sum[..16]).unwrap();
        for t in 16..32 {
            assert!((fx.forecast() + fy.forecast() - fs.forecast()).abs() < 1e-9);
            fx.observe(xs[t]);
            fy.observe(ys[t]);
            fs.observe(sum[t]);
        }
        fx.merge(&fy).unwrap();
        assert!((fx.forecast() - fs.forecast()).abs() < 1e-9);
    }

    #[test]
    fn multi_seasonal_rejects_bad_config() {
        assert!(MultiSeasonalHoltWinters::from_history(0.5, 0.1, 0.1, &[], &[1.0; 8]).is_err());
        let f = vec![SeasonalFactor::new(0, 1.0)];
        assert!(MultiSeasonalHoltWinters::from_history(0.5, 0.1, 0.1, &f, &[1.0; 8]).is_err());
        let f = vec![SeasonalFactor::new(8, 1.0)];
        assert!(matches!(
            MultiSeasonalHoltWinters::from_history(0.5, 0.1, 0.1, &f, &[1.0; 15]),
            Err(TimeSeriesError::InsufficientHistory { needed: 16, got: 15 })
        ));
    }
}
