use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;
use crate::forecast::Forecaster;
use crate::holt_winters::HoltWinters;

/// Brutlag's aberrant-behaviour confidence band around a Holt-Winters
/// forecast (the paper's reference [14], the lineage of its §VI
/// forecasting choice).
///
/// Alongside the Holt-Winters state, a *seasonal deviation* `d[t]` is
/// smoothed with the same seasonal structure:
///
/// ```text
/// d[t] = γ·|T[t] − F[t]| + (1−γ)·d[t−υ]
/// band = F[t] ± δ·d[t−υ]
/// ```
///
/// A sample outside the band is aberrant. Compared with Tiresias'
/// RT/DT rule (Definition 4), the band adapts its width to each phase
/// of the season — wide at the volatile evening peak, narrow at night.
/// Tiresias uses fixed RT/DT because operational counts are too sparse
/// to estimate per-phase deviations at every heavy hitter; this type is
/// provided as the classical alternative for dense aggregates (e.g.
/// root- or first-level series).
///
/// # Example
///
/// ```
/// use tiresias_timeseries::BrutlagBand;
///
/// // A period-8 sawtooth with a little phase jitter.
/// let history: Vec<f64> = (0..64)
///     .map(|t| 10.0 + 4.0 * (t % 8) as f64 + 0.7 * (t % 3) as f64)
///     .collect();
/// let mut band = BrutlagBand::from_history(0.5, 0.05, 0.2, 8, 3.0, &history)?;
/// // The periodic continuation stays inside the band...
/// assert!(!band.observe(10.7).is_aberrant());
/// // ...a far-off value is flagged.
/// assert!(band.observe(120.0).is_aberrant());
/// # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrutlagBand {
    model: HoltWinters,
    /// Seasonal absolute deviations, one per phase.
    deviation: Vec<f64>,
    /// Deviation smoothing rate (Brutlag uses the seasonal γ).
    gamma: f64,
    /// Band half-width in deviations (Brutlag suggests 2–3).
    delta: f64,
    phase: usize,
}

/// One observation's verdict from a [`BrutlagBand`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandVerdict {
    /// The forecast that was in force for the observation.
    pub forecast: f64,
    /// Lower edge of the confidence band.
    pub lower: f64,
    /// Upper edge of the confidence band.
    pub upper: f64,
    /// The observed value.
    pub actual: f64,
}

impl BandVerdict {
    /// `true` iff the observation fell outside the band.
    pub fn is_aberrant(&self) -> bool {
        self.actual < self.lower || self.actual > self.upper
    }

    /// `true` iff above the upper edge (the spike direction Tiresias
    /// cares about).
    pub fn is_spike(&self) -> bool {
        self.actual > self.upper
    }
}

impl BrutlagBand {
    /// Initialises the band from at least two seasonal cycles of
    /// history: the Holt-Winters model uses its 2υ start, and the
    /// per-phase deviations are seeded from the replay residuals.
    ///
    /// `delta` is the band half-width in deviations.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InsufficientHistory`] or
    /// [`TimeSeriesError::InvalidParameter`] exactly as
    /// [`HoltWinters::from_history`] does, plus an invalid-parameter
    /// error for a non-positive `delta`.
    pub fn from_history(
        alpha: f64,
        beta: f64,
        gamma: f64,
        season: usize,
        delta: f64,
        history: &[f64],
    ) -> Result<Self, TimeSeriesError> {
        if delta.is_nan() || delta <= 0.0 {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "band width delta must be positive, got {delta}"
            )));
        }
        // Replay a parallel model to collect per-phase residuals.
        let mut model = HoltWinters::from_history(
            alpha,
            beta,
            gamma,
            season,
            &history[..2 * season.min(history.len() / 2)],
        )?;
        let mut deviation = vec![0.0f64; season];
        let mut seeded = vec![false; season];
        let mut phase = (2 * season) % season; // 0, kept for clarity
        for &v in &history[2 * season..] {
            let f = model.forecast();
            let resid = (v - f).abs();
            if seeded[phase] {
                deviation[phase] = gamma * resid + (1.0 - gamma) * deviation[phase];
            } else {
                deviation[phase] = resid;
                seeded[phase] = true;
            }
            model.observe(v);
            phase = (phase + 1) % season;
        }
        // Unseeded phases (short replay) fall back to the mean residual.
        let seeded_vals: Vec<f64> =
            deviation.iter().zip(&seeded).filter(|(_, &s)| s).map(|(&d, _)| d).collect();
        let fallback = if seeded_vals.is_empty() {
            history.iter().sum::<f64>().abs() / history.len().max(1) as f64 * 0.1 + 1.0
        } else {
            seeded_vals.iter().sum::<f64>() / seeded_vals.len() as f64
        };
        for (d, s) in deviation.iter_mut().zip(&seeded) {
            if !s {
                *d = fallback;
            }
        }
        Ok(BrutlagBand { model, deviation, gamma, delta, phase })
    }

    /// Current forecast for the next observation.
    pub fn forecast(&self) -> f64 {
        self.model.forecast()
    }

    /// Current band `(lower, upper)` for the next observation.
    pub fn band(&self) -> (f64, f64) {
        let f = self.model.forecast();
        let d = self.deviation[self.phase].max(f.abs() * 0.01 + f64::EPSILON);
        (f - self.delta * d, f + self.delta * d)
    }

    /// Feeds one observation, returning its verdict and advancing the
    /// model, band and phase.
    pub fn observe(&mut self, actual: f64) -> BandVerdict {
        let forecast = self.model.forecast();
        let (lower, upper) = self.band();
        let resid = (actual - forecast).abs();
        self.deviation[self.phase] =
            self.gamma * resid + (1.0 - self.gamma) * self.deviation[self.phase];
        self.model.observe(actual);
        self.phase = (self.phase + 1) % self.deviation.len();
        BandVerdict { forecast, lower, upper, actual }
    }

    /// The per-phase deviations (for inspection/telemetry).
    pub fn deviations(&self) -> &[f64] {
        &self.deviation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(season: usize, cycles: usize, noise: f64) -> Vec<f64> {
        (0..season * cycles)
            .map(|t| {
                20.0 + 10.0 * ((t % season) as f64 / season as f64 * std::f64::consts::TAU).sin()
                    + noise * ((t * 7919) % 13) as f64 / 13.0
            })
            .collect()
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(BrutlagBand::from_history(0.5, 0.1, 0.2, 4, 0.0, &periodic(4, 4, 0.0)).is_err());
        assert!(BrutlagBand::from_history(0.5, 0.1, 0.2, 4, -1.0, &periodic(4, 4, 0.0)).is_err());
    }

    #[test]
    fn periodic_continuation_stays_inside() {
        let hist = periodic(8, 6, 1.0);
        let mut band = BrutlagBand::from_history(0.4, 0.02, 0.2, 8, 3.0, &hist).unwrap();
        let future = periodic(8, 2, 1.0);
        let mut aberrant = 0;
        for &v in &future {
            if band.observe(v).is_aberrant() {
                aberrant += 1;
            }
        }
        assert!(aberrant <= 1, "{aberrant} false aberrations");
    }

    #[test]
    fn spike_is_flagged_and_direction_is_reported() {
        let hist = periodic(8, 6, 1.0);
        let mut band = BrutlagBand::from_history(0.4, 0.02, 0.2, 8, 2.5, &hist).unwrap();
        let v = band.observe(500.0);
        assert!(v.is_aberrant());
        assert!(v.is_spike());
        let v = band.observe(-300.0);
        assert!(v.is_aberrant());
        assert!(!v.is_spike());
    }

    #[test]
    fn band_widens_at_noisy_phases() {
        // Noise only at phase 0: its deviation must exceed the quiet
        // phases' after enough cycles.
        let season = 4;
        let hist: Vec<f64> = (0..season * 24)
            .map(|t| {
                let base = 10.0;
                if t % season == 0 {
                    base + 8.0 * (((t * 31) % 7) as f64 / 7.0 - 0.5)
                } else {
                    base
                }
            })
            .collect();
        let band = BrutlagBand::from_history(0.3, 0.0, 0.3, season, 2.0, &hist).unwrap();
        let d = band.deviations();
        assert!(d[0] > d[1] && d[0] > d[2] && d[0] > d[3], "noisy phase deviation {d:?}");
    }

    #[test]
    fn verdict_band_edges_are_consistent() {
        let hist = periodic(4, 4, 0.5);
        let mut band = BrutlagBand::from_history(0.5, 0.05, 0.2, 4, 2.0, &hist).unwrap();
        let v = band.observe(21.0);
        assert!(v.lower < v.upper);
        assert!((v.lower + v.upper) / 2.0 - v.forecast < 1e-9);
        assert_eq!(v.actual, 21.0);
    }

    #[test]
    fn insufficient_history_is_rejected() {
        assert!(matches!(
            BrutlagBand::from_history(0.5, 0.1, 0.2, 8, 2.0, &[1.0; 15]),
            Err(TimeSeriesError::InsufficientHistory { .. })
        ));
    }
}
