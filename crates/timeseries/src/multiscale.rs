use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::TimeSeriesError;

/// One time scale of a [`MultiScaleSeries`]: the actual and forecast
/// histories at that granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Scale {
    actual: VecDeque<f64>,
    forecast: VecDeque<f64>,
}

/// Time series maintained at `η` geometric time scales
/// `Δ, λΔ, λ²Δ, …, λ^(η−1)·Δ` — the paper's §V-B6 / Fig. 10 structure.
///
/// Pushing one base-scale sample costs amortised Θ(1): scale `i` receives
/// one aggregated sample every `λ^i` base updates, and
/// `Σ_i κ/λ^i ≤ 2κ` for λ ≥ 2. Each scale also keeps an EWMA forecast
/// track, exactly as in the paper's `UPDATE_TS` pseudocode.
///
/// This generalisation lets ADA support any configuration where the
/// timeunit size Δ is a multiple of the window shift ς: run the base
/// scale at ς and read detections from the scale matching Δ.
///
/// # Example
///
/// ```
/// use tiresias_timeseries::MultiScaleSeries;
///
/// // Base scale + two coarser scales, aggregating pairs (λ = 2).
/// let mut ms = MultiScaleSeries::new(2, 3, 8, 0.5)?;
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     ms.update(v);
/// }
/// assert_eq!(ms.actual(0).len(), 4);
/// assert_eq!(ms.actual(1), vec![3.0, 7.0]);  // pairwise sums
/// assert_eq!(ms.actual(2), vec![10.0]);      // sum of four
/// # Ok::<(), tiresias_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiScaleSeries {
    lambda: usize,
    eta: usize,
    ell: usize,
    alpha: f64,
    scales: Vec<Scale>,
    /// Total number of per-scale pushes, used to verify the amortised
    /// Θ(1) bound in tests.
    push_count: u64,
}

impl MultiScaleSeries {
    /// Creates a multi-scale series.
    ///
    /// * `lambda` — geometric ratio between consecutive scales (λ ≥ 2),
    /// * `eta` — number of scales (η ≥ 1),
    /// * `ell` — retained history length per scale (ℓ ≥ 1),
    /// * `alpha` — EWMA smoothing rate of the per-scale forecast track.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidParameter`] if `lambda < 2`,
    /// `eta == 0`, `ell == 0`, or `alpha ∉ (0, 1]`.
    pub fn new(lambda: usize, eta: usize, ell: usize, alpha: f64) -> Result<Self, TimeSeriesError> {
        if lambda < 2 {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "lambda must be at least 2, got {lambda}"
            )));
        }
        if eta == 0 {
            return Err(TimeSeriesError::InvalidParameter("eta must be positive".into()));
        }
        if ell == 0 {
            return Err(TimeSeriesError::InvalidParameter("ell must be positive".into()));
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(TimeSeriesError::InvalidParameter(format!(
                "alpha must be in (0, 1], got {alpha}"
            )));
        }
        Ok(MultiScaleSeries {
            lambda,
            eta,
            ell,
            alpha,
            scales: (0..eta)
                .map(|_| Scale { actual: VecDeque::new(), forecast: VecDeque::new() })
                .collect(),
            push_count: 0,
        })
    }

    /// Number of scales η.
    pub fn scale_count(&self) -> usize {
        self.eta
    }

    /// Geometric ratio λ.
    pub fn lambda(&self) -> usize {
        self.lambda
    }

    /// Pushes one base-scale sample, cascading aggregated samples to
    /// coarser scales as they complete (the paper's `UPDATE_TS`).
    pub fn update(&mut self, value: f64) {
        self.update_at(value, 0);
    }

    fn update_at(&mut self, w: f64, i: usize) {
        self.push_count += 1;
        let scale = &mut self.scales[i];
        let prev = scale.forecast.back().copied().unwrap_or(w);
        scale.forecast.push_back(self.alpha * w + (1.0 - self.alpha) * prev);
        scale.actual.push_back(w);
        let s = scale.actual.len();
        if i + 1 < self.eta && s.is_multiple_of(self.lambda) {
            let w_next: f64 = scale.actual.iter().rev().take(self.lambda).sum();
            self.update_at(w_next, i + 1);
        }
        // Trim λ at a time so aggregation boundaries stay aligned, as in
        // the paper's pseudocode (`if s = ℓ + λ then pop λ times`).
        let scale = &mut self.scales[i];
        if scale.actual.len() >= self.ell + self.lambda {
            for _ in 0..self.lambda {
                scale.actual.pop_front();
                scale.forecast.pop_front();
            }
        }
    }

    /// The retained actual samples at scale `i` (0 = finest), oldest
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= eta`.
    pub fn actual(&self, i: usize) -> Vec<f64> {
        self.scales[i].actual.iter().copied().collect()
    }

    /// The retained forecast samples at scale `i`, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= eta`.
    pub fn forecast(&self, i: usize) -> Vec<f64> {
        self.scales[i].forecast.iter().copied().collect()
    }

    /// Newest actual sample at scale `i`, if any.
    pub fn latest_actual(&self, i: usize) -> Option<f64> {
        self.scales[i].actual.back().copied()
    }

    /// Newest forecast at scale `i`, if any.
    pub fn latest_forecast(&self, i: usize) -> Option<f64> {
        self.scales[i].forecast.back().copied()
    }

    /// Total number of per-scale pushes so far (≤ 2× the number of
    /// [`MultiScaleSeries::update`] calls, the paper's amortised bound).
    pub fn push_count(&self) -> u64 {
        self.push_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(MultiScaleSeries::new(1, 2, 8, 0.5).is_err());
        assert!(MultiScaleSeries::new(2, 0, 8, 0.5).is_err());
        assert!(MultiScaleSeries::new(2, 2, 0, 0.5).is_err());
        assert!(MultiScaleSeries::new(2, 2, 8, 0.0).is_err());
        assert!(MultiScaleSeries::new(2, 2, 8, 1.2).is_err());
    }

    #[test]
    fn coarser_scales_aggregate_sums() {
        let mut ms = MultiScaleSeries::new(3, 2, 16, 0.5).unwrap();
        for v in 1..=9 {
            ms.update(v as f64);
        }
        // Scale 1 gets sums of consecutive triples: 6, 15, 24.
        assert_eq!(ms.actual(1), vec![6.0, 15.0, 24.0]);
    }

    #[test]
    fn history_is_bounded_per_scale() {
        let mut ms = MultiScaleSeries::new(2, 3, 4, 0.5).unwrap();
        for v in 0..200 {
            ms.update(v as f64);
        }
        for i in 0..3 {
            assert!(ms.actual(i).len() < 4 + 2, "scale {i} holds {} samples", ms.actual(i).len());
            assert_eq!(ms.actual(i).len(), ms.forecast(i).len());
        }
    }

    #[test]
    fn amortized_push_bound_holds() {
        // Σ κ/λ^i ≤ 2κ for λ = 2 (the paper's Θ(1) amortised argument).
        let mut ms = MultiScaleSeries::new(2, 6, 32, 0.5).unwrap();
        let kappa = 10_000u64;
        for v in 0..kappa {
            ms.update(v as f64);
        }
        assert!(ms.push_count() <= 2 * kappa, "pushes = {}", ms.push_count());
    }

    #[test]
    fn trimming_preserves_aggregation_alignment() {
        // After trimming at the base scale, coarser sums must still be
        // sums of aligned λ-blocks of the original stream.
        let mut ms = MultiScaleSeries::new(2, 2, 4, 0.5).unwrap();
        for v in 1..=32 {
            ms.update(v as f64);
        }
        // Base stream blocks of 2: (1+2)=3, (3+4)=7, ... block k sums to 4k−1.
        let coarse = ms.actual(1);
        for (idx, &v) in coarse.iter().rev().enumerate() {
            let k = 16 - idx; // newest block is the 16th
            assert_eq!(v, (4 * k - 1) as f64);
        }
    }

    #[test]
    fn forecast_track_is_ewma() {
        let mut ms = MultiScaleSeries::new(2, 1, 8, 0.5).unwrap();
        ms.update(10.0); // seeds at 10
        ms.update(20.0); // 0.5*20 + 0.5*10 = 15
        assert_eq!(ms.latest_forecast(0), Some(15.0));
    }

    #[test]
    fn equivalence_of_delta_multiple_of_sigma() {
        // The paper's reduction: a problem with Δ = 4ς is the λ=4, η=2
        // structure read at scale 1. Check scale-1 samples equal the
        // 4-aggregated stream.
        let mut ms = MultiScaleSeries::new(4, 2, 64, 0.5).unwrap();
        let stream: Vec<f64> = (0..64).map(|t| (t % 7) as f64).collect();
        for &v in &stream {
            ms.update(v);
        }
        let coarse = ms.actual(1);
        let expected: Vec<f64> = stream.chunks(4).map(|c| c.iter().sum()).collect();
        let n = coarse.len();
        assert_eq!(&expected[expected.len() - n..], &coarse[..]);
    }
}
