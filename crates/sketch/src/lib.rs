//! Streaming sketch substrate for Tiresias.
//!
//! The paper's lineage (§VIII) is the streaming heavy-hitter literature:
//! count-min sketches (Cormode & Muthukrishnan), sketch-based change
//! detection (Krishnamurthy et al.) and hierarchical heavy hitter
//! mining. This crate provides the two classic primitives from that
//! line, implemented from scratch, for deployments whose leaf spaces are
//! too large to keep exact per-leaf counters (the full-scale SCD
//! hierarchy has ≈360 000 set-top boxes):
//!
//! * [`CountMinSketch`] — fixed-size frequency summary with one-sided
//!   (over-)estimates, mergeable across shards, with optional
//!   conservative update,
//! * [`SpaceSaving`] — the top-k counter that answers *which* keys are
//!   currently heavy, with deterministic error bounds.
//!
//! Together they implement the standard recipe: Space-Saving proposes
//! the candidate heavy leaves per timeunit, the count-min sketch (or the
//! exact stream) scores them, and the resulting sparse count vector
//! feeds the exact SHHH machinery of `tiresias-hhh` — approximating only
//! the leaf tail that cannot matter to any θ-heavy hitter.
//!
//! # Example
//!
//! ```
//! use tiresias_sketch::{CountMinSketch, SpaceSaving};
//!
//! let mut cms = CountMinSketch::with_dimensions(4, 1024, 7);
//! let mut top = SpaceSaving::new(8);
//! for (key, count) in [(10u64, 500), (77, 300), (3, 4), (9, 2)] {
//!     for _ in 0..count {
//!         cms.add(key, 1);
//!         top.add(key, 1);
//!     }
//! }
//! assert!(cms.estimate(10) >= 500); // never under-estimates
//! let heavy: Vec<u64> = top.top(2).iter().map(|e| e.key).collect();
//! assert_eq!(heavy, vec![10, 77]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count_min;
mod space_saving;

pub use count_min::CountMinSketch;
pub use space_saving::{SpaceSaving, TopEntry};
