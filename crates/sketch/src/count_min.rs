use serde::{Deserialize, Serialize};

/// A count-min sketch over `u64` keys (Cormode & Muthukrishnan, the
/// paper's reference [18]).
///
/// `depth` rows of `width` counters; each update increments one counter
/// per row (chosen by a per-row pairwise-independent hash), and a point
/// query returns the minimum across rows. Estimates are **one-sided**:
/// `estimate(k) ≥ true_count(k)` always, and with width `⌈e/ε⌉`, depth
/// `⌈ln(1/δ)⌉`, the overestimate exceeds `ε·N` with probability at most
/// δ. Sketches with identical dimensions and seed add cell-wise, so
/// shards merge losslessly.
///
/// # Example
///
/// ```
/// use tiresias_sketch::CountMinSketch;
///
/// let mut s = CountMinSketch::for_error(0.01, 0.01, 42);
/// s.add(7, 3);
/// s.add(7, 2);
/// assert!(s.estimate(7) >= 5);
/// assert_eq!(s.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    depth: usize,
    width: usize,
    seed: u64,
    /// Row-major counters, `depth × width`.
    cells: Vec<u64>,
    /// Total mass added (for ε·N error bounds).
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    pub fn with_dimensions(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0 && width > 0, "sketch dimensions must be positive");
        CountMinSketch { depth, width, seed, cells: vec![0; depth * width], total: 0 }
    }

    /// Creates a sketch sized for additive error `ε·N` with failure
    /// probability δ: width `⌈e/ε⌉`, depth `⌈ln(1/δ)⌉`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn for_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::with_dimensions(depth, width, seed)
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total mass added so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-row cell index for `key` — SplitMix64 finalisation with a
    /// per-row seed gives well-mixed, pairwise-independent-in-practice
    /// hashing without an external dependency.
    fn index(&self, row: usize, key: u64) -> usize {
        let mut z = key
            .wrapping_add(self.seed)
            .wrapping_add((row as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % self.width as u64) as usize
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let i = row * self.width + self.index(row, key);
            self.cells[i] += count;
        }
        self.total += count;
    }

    /// Adds with the *conservative update* optimisation: only counters
    /// at the current minimum are raised, tightening over-estimates for
    /// skewed streams at the cost of losing cell-wise mergeability.
    pub fn add_conservative(&mut self, key: u64, count: u64) {
        let est = self.estimate(key) + count;
        for row in 0..self.depth {
            let i = row * self.width + self.index(row, key);
            if self.cells[i] < est {
                self.cells[i] = est;
            }
        }
        self.total += count;
    }

    /// Point query: an upper bound on `key`'s true count.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.cells[row * self.width + self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Merges another sketch (cell-wise addition).
    ///
    /// # Errors
    ///
    /// Returns a message if dimensions or seeds differ (their hash
    /// functions would disagree).
    pub fn merge(&mut self, other: &CountMinSketch) -> Result<(), String> {
        if self.depth != other.depth || self.width != other.width || self.seed != other.seed {
            return Err(format!(
                "sketch shapes differ: {}x{} seed {} vs {}x{} seed {}",
                self.depth, self.width, self.seed, other.depth, other.width, other.seed
            ));
        }
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            *a += *b;
        }
        self.total += other.total;
        Ok(())
    }

    /// Resets all counters, keeping dimensions and seed.
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_never_underestimate() {
        let mut s = CountMinSketch::with_dimensions(4, 256, 1);
        for k in 0..1000u64 {
            s.add(k, k % 7 + 1);
        }
        for k in 0..1000u64 {
            assert!(s.estimate(k) > k % 7, "key {k}");
        }
    }

    #[test]
    fn error_bound_holds_on_skewed_stream() {
        // ε = 0.01, so overestimates should be ≲ 0.01·N for most keys.
        let mut s = CountMinSketch::for_error(0.01, 0.01, 2);
        let mut truth = std::collections::HashMap::new();
        for i in 0..20_000u64 {
            let key = i % 100; // 100 distinct keys
            let c = if key < 5 { 50 } else { 1 };
            s.add(key, c);
            *truth.entry(key).or_insert(0u64) += c;
        }
        let n = s.total() as f64;
        let mut violations = 0;
        for (k, t) in truth {
            if (s.estimate(k) - t) as f64 > 0.01 * n {
                violations += 1;
            }
        }
        assert!(violations <= 2, "{violations} keys exceeded the ε·N bound");
    }

    #[test]
    fn conservative_update_is_tighter() {
        let stream: Vec<u64> = (0..5000).map(|i| i % 50).collect();
        let mut plain = CountMinSketch::with_dimensions(3, 64, 3);
        let mut conservative = CountMinSketch::with_dimensions(3, 64, 3);
        for &k in &stream {
            plain.add(k, 1);
            conservative.add_conservative(k, 1);
        }
        let over_plain: u64 = (0..50).map(|k| plain.estimate(k) - 100).sum();
        let over_cons: u64 = (0..50).map(|k| conservative.estimate(k) - 100).sum();
        assert!(over_cons <= over_plain, "conservative {over_cons} vs plain {over_plain}");
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = CountMinSketch::with_dimensions(4, 128, 9);
        let mut b = CountMinSketch::with_dimensions(4, 128, 9);
        let mut whole = CountMinSketch::with_dimensions(4, 128, 9);
        for k in 0..500u64 {
            a.add(k, 2);
            whole.add(k, 2);
        }
        for k in 250..750u64 {
            b.add(k, 3);
            whole.add(k, 3);
        }
        a.merge(&b).unwrap();
        for k in 0..750u64 {
            assert_eq!(a.estimate(k), whole.estimate(k), "key {k}");
        }
        assert_eq!(a.total(), whole.total());
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let mut a = CountMinSketch::with_dimensions(4, 128, 9);
        assert!(a.merge(&CountMinSketch::with_dimensions(4, 64, 9)).is_err());
        assert!(a.merge(&CountMinSketch::with_dimensions(3, 128, 9)).is_err());
        assert!(a.merge(&CountMinSketch::with_dimensions(4, 128, 8)).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut s = CountMinSketch::with_dimensions(2, 32, 5);
        s.add(1, 10);
        s.clear();
        assert_eq!(s.estimate(1), 0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn for_error_dimensions() {
        let s = CountMinSketch::for_error(0.001, 0.01, 0);
        assert!(s.width() >= 2718);
        assert!(s.depth() >= 5);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_panic() {
        let _ = CountMinSketch::with_dimensions(0, 8, 0);
    }
}
