use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One monitored key of a [`SpaceSaving`] summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopEntry {
    /// The key.
    pub key: u64,
    /// Estimated count (an upper bound on the true count).
    pub count: u64,
    /// Maximum possible overestimate: the count the key inherited when
    /// it evicted the previous minimum. `count − error` is a lower
    /// bound on the true count.
    pub error: u64,
}

impl TopEntry {
    /// Guaranteed lower bound on the key's true count.
    pub fn lower_bound(&self) -> u64 {
        self.count - self.error
    }
}

/// The Space-Saving top-k summary (Metwally et al.), the candidate
/// generator of the streaming heavy-hitter recipe the paper builds on.
///
/// At most `capacity` keys are monitored. An arriving unmonitored key
/// evicts the current minimum, inheriting its count as potential error.
/// Guarantees: every key with true count > `N / capacity` is monitored,
/// and every estimate overshoots by at most `N / capacity`.
///
/// # Example
///
/// ```
/// use tiresias_sketch::SpaceSaving;
///
/// let mut s = SpaceSaving::new(4);
/// for _ in 0..100 { s.add(1, 1); }
/// for _ in 0..50 { s.add(2, 1); }
/// for k in 100..140 { s.add(k, 1); } // tail noise
/// let top: Vec<u64> = s.top(2).iter().map(|e| e.key).collect();
/// assert_eq!(top, vec![1, 2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    counters: HashMap<u64, TopEntry>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a summary monitoring at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "space-saving capacity must be positive");
        SpaceSaving { capacity, counters: HashMap::with_capacity(capacity + 1), total: 0 }
    }

    /// Monitored-key budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total mass added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of currently monitored keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` iff nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        self.total += count;
        if let Some(e) = self.counters.get_mut(&key) {
            e.count += count;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, TopEntry { key, count, error: 0 });
            return;
        }
        // Evict the minimum; the newcomer inherits its count as error.
        let &min_key = self
            .counters
            .iter()
            .min_by_key(|(_, e)| e.count)
            .map(|(k, _)| k)
            .expect("capacity > 0 implies non-empty at this point");
        let min = self.counters.remove(&min_key).expect("key just found");
        self.counters.insert(key, TopEntry { key, count: min.count + count, error: min.count });
    }

    /// The estimated count of `key`; keys not monitored report the
    /// current minimum (their upper bound).
    pub fn estimate(&self, key: u64) -> u64 {
        if let Some(e) = self.counters.get(&key) {
            return e.count;
        }
        self.counters.values().map(|e| e.count).min().unwrap_or(0)
    }

    /// The `k` heaviest monitored entries, heaviest first.
    pub fn top(&self, k: usize) -> Vec<TopEntry> {
        let mut all: Vec<TopEntry> = self.counters.values().copied().collect();
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        all.truncate(k);
        all
    }

    /// Every monitored entry whose **guaranteed** count
    /// (`count − error`) reaches `threshold` — candidates that are
    /// certainly heavy.
    pub fn guaranteed_heavy(&self, threshold: u64) -> Vec<TopEntry> {
        let mut out: Vec<TopEntry> =
            self.counters.values().filter(|e| e.lower_bound() >= threshold).copied().collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }

    /// `true` iff `key` is currently monitored.
    pub fn contains(&self, key: u64) -> bool {
        self.counters.contains_key(&key)
    }

    /// Halves every monitored count (and its error bound), dropping
    /// keys that decay to zero — an exponential-decay step that turns
    /// the summary into a recency-weighted heavy-key detector when
    /// applied once per epoch. The `N / capacity` error guarantee keeps
    /// holding for the decayed totals, since halving is applied
    /// uniformly to counts, errors and the total mass.
    pub fn halve(&mut self) {
        self.counters.retain(|_, e| {
            e.count /= 2;
            e.error /= 2;
            e.count > 0
        });
        self.total /= 2;
    }

    /// Resets the summary, keeping the capacity.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(16);
        for k in 0..10u64 {
            s.add(k, k + 1);
        }
        for k in 0..10u64 {
            assert_eq!(s.estimate(k), k + 1);
            assert_eq!(s.top(16).iter().find(|e| e.key == k).unwrap().error, 0);
        }
    }

    #[test]
    fn heavy_keys_survive_tail_pressure() {
        let mut s = SpaceSaving::new(8);
        // Two heavy keys among a churning tail.
        for i in 0..10_000u64 {
            s.add(1, 1);
            if i % 2 == 0 {
                s.add(2, 1);
            }
            s.add(1000 + i, 1); // unique tail key each step
        }
        let top: Vec<u64> = s.top(2).iter().map(|e| e.key).collect();
        assert_eq!(top, vec![1, 2]);
        // Guarantee: true count 10 000 for key 1.
        let e1 = s.top(1)[0];
        assert!(e1.count >= 10_000);
        assert!(e1.lower_bound() <= 10_000);
    }

    #[test]
    fn overestimate_bounded_by_n_over_k() {
        let mut s = SpaceSaving::new(50);
        let mut truth = HashMap::new();
        let mut x: u64 = 88172645463325252;
        for _ in 0..30_000 {
            // Zipf-ish synthetic stream via xorshift.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 997).leading_zeros() as u64 * 13 + x % 200;
            s.add(key, 1);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        let bound = s.total() / 50;
        for e in s.top(50) {
            let t = truth.get(&e.key).copied().unwrap_or(0);
            assert!(e.count >= t, "never underestimates");
            assert!(e.count - t <= bound, "overestimate within N/k");
        }
    }

    #[test]
    fn guaranteed_heavy_is_sound() {
        let mut s = SpaceSaving::new(4);
        for _ in 0..500 {
            s.add(7, 1);
        }
        for k in 0..100u64 {
            s.add(k * 3 + 100, 1);
        }
        for e in s.guaranteed_heavy(400) {
            assert_eq!(e.key, 7);
            assert!(e.lower_bound() >= 400);
        }
        assert_eq!(s.guaranteed_heavy(400).len(), 1);
    }

    #[test]
    fn monitored_set_never_exceeds_capacity() {
        let mut s = SpaceSaving::new(5);
        for k in 0..1000u64 {
            s.add(k, 1);
            assert!(s.len() <= 5);
        }
        assert_eq!(s.total(), 1000);
    }

    #[test]
    fn clear_resets() {
        let mut s = SpaceSaving::new(3);
        s.add(1, 5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::new(0);
    }

    #[test]
    fn halve_decays_and_evicts_stale_keys() {
        let mut s = SpaceSaving::new(8);
        s.add(1, 100);
        s.add(2, 1);
        assert!(s.contains(1) && s.contains(2));
        s.halve();
        assert_eq!(s.estimate(1), 50);
        assert!(!s.contains(2), "count 1 decays to zero and is dropped");
        assert_eq!(s.total(), 50);
        // A once-hot key fades under repeated decay with no traffic.
        for _ in 0..7 {
            s.halve();
        }
        assert!(!s.contains(1));
        assert!(s.is_empty());
    }
}
