use std::error::Error;
use std::fmt;

use tiresias_core::CoreError;

/// Errors surfaced by [`crate::Server`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Socket or checkpoint-file I/O failed.
    Io(std::io::Error),
    /// The engine rejected a configuration or checkpoint, or failed
    /// mid-stream.
    Core(CoreError),
    /// The server configuration itself was invalid.
    Config(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::Core(e) => write!(f, "{e}"),
            ServerError::Config(why) => write!(f, "invalid server configuration: {why}"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Core(e) => Some(e),
            ServerError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}
