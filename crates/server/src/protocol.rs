//! The newline-delimited text wire protocol.
//!
//! Every frame is one line of UTF-8 terminated by `\n`. Client
//! requests:
//!
//! | Request               | Reply                                 |
//! |-----------------------|---------------------------------------|
//! | `PUSH <path> <ts>`    | `OK` (suppressed after `NOACK`), `LATE` if the record's timeunit is already closed, or `ERR <why>` |
//! | `SUBSCRIBE`           | `OK subscribed`, then asynchronous `EVENT …` frames |
//! | `STATS`               | one `STATS key=value …` line          |
//! | `NOACK`               | `OK` — from now on `PUSH` only answers `LATE`/`ERR`, not `OK` |
//! | `PING`                | `PONG`                                |
//! | `QUIT`                | `BYE`, then the server closes the session |
//! | `SHUTDOWN`            | `OK shutting down`, then the whole daemon drains and exits |
//!
//! `PUSH` takes the category path first and the timestamp (seconds)
//! last; the path is everything between, so labels may contain spaces
//! (`PUSH TV/No Service 1712345678`). Anything unparseable gets an
//! `ERR <why>` reply and the session stays usable — a malformed line
//! never wedges the connection or the ingest engine. Blank lines are
//! ignored.
//!
//! Anomaly events broadcast to subscribers are `key=value` frames with
//! the path last (it may contain spaces):
//!
//! ```text
//! EVENT unit=9 time=8100 level=2 kind=spike actual=80 forecast=8.25 path=TV/No Service
//! ```

use tiresias_core::AnomalyEvent;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ingest one record: category path + timestamp in seconds.
    Push {
        /// `/`-separated category path.
        path: String,
        /// Record timestamp in seconds.
        t_secs: u64,
    },
    /// Start streaming anomaly events to this session.
    Subscribe,
    /// Report server metrics.
    Stats,
    /// Suppress per-`PUSH` `OK` acknowledgements for this session.
    Noack,
    /// Liveness probe.
    Ping,
    /// Close this session.
    Quit,
    /// Gracefully shut the whole daemon down.
    Shutdown,
}

/// Parses one request line. Returns `Ok(None)` for blank lines (which
/// are ignored) and `Err` with a human-readable reason for malformed
/// input — the reason is sent back verbatim in the `ERR` reply.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (command, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match command {
        "PUSH" => {
            let Some((path, ts)) = rest.rsplit_once(char::is_whitespace) else {
                return Err("PUSH needs a category path and a timestamp".to_string());
            };
            let path = path.trim();
            if path.is_empty() {
                return Err("PUSH category path is empty".to_string());
            }
            let t_secs = ts
                .parse::<u64>()
                .map_err(|_| format!("PUSH timestamp `{ts}` is not a non-negative integer"))?;
            Ok(Some(Request::Push { path: path.to_string(), t_secs }))
        }
        "SUBSCRIBE" | "STATS" | "NOACK" | "PING" | "QUIT" | "SHUTDOWN" => {
            if !rest.is_empty() {
                return Err(format!("{command} takes no arguments"));
            }
            Ok(Some(match command {
                "SUBSCRIBE" => Request::Subscribe,
                "STATS" => Request::Stats,
                "NOACK" => Request::Noack,
                "PING" => Request::Ping,
                "QUIT" => Request::Quit,
                _ => Request::Shutdown,
            }))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Formats an anomaly event as the `EVENT` broadcast frame (no
/// trailing newline). The path comes last so it may contain spaces.
pub fn format_event(e: &AnomalyEvent) -> String {
    format!(
        "EVENT unit={} time={} level={} kind={} actual={} forecast={} path={}",
        e.unit, e.time_secs, e.level, e.kind, e.actual, e.forecast, e.path
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_parses_with_spaces_in_path() {
        assert_eq!(
            parse_request("PUSH TV/No Service 1234").unwrap(),
            Some(Request::Push { path: "TV/No Service".to_string(), t_secs: 1234 })
        );
        assert_eq!(
            parse_request("  PUSH a/b 0 ").unwrap(),
            Some(Request::Push { path: "a/b".to_string(), t_secs: 0 })
        );
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_request("SUBSCRIBE").unwrap(), Some(Request::Subscribe));
        assert_eq!(parse_request("STATS").unwrap(), Some(Request::Stats));
        assert_eq!(parse_request("NOACK").unwrap(), Some(Request::Noack));
        assert_eq!(parse_request("PING").unwrap(), Some(Request::Ping));
        assert_eq!(parse_request("QUIT").unwrap(), Some(Request::Quit));
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Some(Request::Shutdown));
        assert_eq!(parse_request("   ").unwrap(), None, "blank lines are ignored");
    }

    #[test]
    fn malformed_lines_produce_reasons() {
        assert!(parse_request("FLY me to the moon").unwrap_err().contains("unknown command"));
        assert!(parse_request("PUSH").unwrap_err().contains("needs"));
        assert!(parse_request("PUSH lonely-token").unwrap_err().contains("needs"));
        assert!(parse_request("PUSH a/b notanumber").unwrap_err().contains("notanumber"));
        assert!(parse_request("PUSH  42").unwrap_err().contains("needs"));
        assert!(parse_request("STATS now").unwrap_err().contains("no arguments"));
        assert!(parse_request("push a 1").unwrap_err().contains("unknown command"));
    }

    #[test]
    fn event_frame_puts_path_last() {
        let mut tree = tiresias_hierarchy::Tree::new("All");
        let e = AnomalyEvent {
            node: tree.insert_str("TV/No Service"),
            path: "TV/No Service".parse().unwrap(),
            level: 2,
            unit: 9,
            time_secs: 8100,
            actual: 80.0,
            forecast: 8.25,
            kind: tiresias_core::AnomalyKind::Spike,
        };
        let frame = format_event(&e);
        assert!(frame.ends_with("path=TV/No Service"), "{frame}");
        assert!(frame.contains("unit=9"));
        assert!(frame.contains("kind=spike"));
    }
}
