//! The newline-delimited text wire protocol.
//!
//! Every frame is one line of UTF-8 terminated by `\n`. Client
//! requests:
//!
//! | Request               | Reply                                 |
//! |-----------------------|---------------------------------------|
//! | `PUSH <path> <ts>`    | `OK` (suppressed after `NOACK`), `LATE` if the record's timeunit is already closed, or `ERR <why>` |
//! | `SUBSCRIBE [FROM <unit>]` | `OK subscribed from=<unit>`, then asynchronous `EVENT …` frames; with `FROM`, retained events of units `≥ <unit>` are replayed first and the live stream splices on gap-free |
//! | `QUERY <from> <to> [PREFIX <path>] [LEVEL <n>] [LIMIT <k>]` | `EVENT …` frames for retained events with unit in `[from, to]` (inclusive), then `OK n=<count>` |
//! | `STATS`               | one `STATS key=value …` line          |
//! | `STATS JSON`          | one JSON object with every registered counter, gauge, and latency-histogram summary (the `tiresias top` feed) |
//! | `NOACK`               | `OK` — from now on `PUSH` only answers `LATE`/`ERR`, not `OK` |
//! | `PING`                | `PONG`                                |
//! | `HELLO v2`            | `OK v2` if the server speaks [wire protocol v2](v2), `ERR` otherwise; the session stays text |
//! | `UPGRADE`             | `OK upgraded`, then the **inbound** stream switches to binary [v2 frames](v2) (replies stay text lines) |
//! | `QUIT`                | `BYE`, then the server closes the session |
//! | `SHUTDOWN`            | `OK shutting down`, then the whole daemon drains and exits |
//!
//! `PUSH` takes the category path first and the timestamp (seconds)
//! last; the path is everything between, so labels may contain spaces
//! (`PUSH TV/No Service 1712345678`). Anything unparseable gets an
//! `ERR <why>` reply and the session stays usable — a malformed line
//! never wedges the connection or the ingest engine. Blank lines are
//! ignored.
//!
//! `QUERY` reads the server's retained report store (bounded by
//! `--retain-units`): `PREFIX` restricts to events at or under a
//! category path (it may contain spaces and runs until the `LEVEL` /
//! `LIMIT` keyword or end of line), `LEVEL` to an exact hierarchy
//! depth, and `LIMIT` caps the reply batch (default 1000, hard cap
//! 10000). Queries are answered off a read-mostly lock — they never
//! stall record admission.
//!
//! `SUBSCRIBE FROM <unit>` is the catch-up path for a reconnecting or
//! lag-dropped subscriber: the server replays the retained events of
//! units `≥ <unit>` in order, then splices onto the live stream with
//! no gap and no duplicates (frames are sequenced by store position;
//! the reply's `from=` reports where the replay actually started, which
//! is later than requested when older history was already evicted).
//!
//! Anomaly events broadcast to subscribers are `key=value` frames with
//! the path last (it may contain spaces):
//!
//! ```text
//! EVENT unit=9 time=8100 level=2 kind=spike actual=80 forecast=8.25 path=TV/No Service
//! ```

pub mod v2;

use tiresias_core::AnomalyEvent;

/// Default number of events a `QUERY` returns when `LIMIT` is absent.
pub const DEFAULT_QUERY_LIMIT: usize = 1_000;
/// Hard cap on a single `QUERY` reply batch.
pub const MAX_QUERY_LIMIT: usize = 10_000;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ingest one record: category path + timestamp in seconds.
    Push {
        /// `/`-separated category path.
        path: String,
        /// Record timestamp in seconds.
        t_secs: u64,
    },
    /// Start streaming anomaly events to this session, optionally
    /// replaying retained history first.
    Subscribe {
        /// Replay retained events of units `≥ from` before splicing
        /// onto the live stream (`None` = live only).
        from: Option<u64>,
    },
    /// Query the retained report store.
    Query {
        /// First timeunit of the range (inclusive).
        from_unit: u64,
        /// Last timeunit of the range (inclusive).
        to_unit: u64,
        /// Restrict to events at or under this category path.
        prefix: Option<String>,
        /// Restrict to events at exactly this hierarchy level.
        level: Option<usize>,
        /// Cap the reply batch (clamped to [`MAX_QUERY_LIMIT`]).
        limit: Option<usize>,
    },
    /// Report server metrics.
    Stats {
        /// `true` for `STATS JSON` — the full telemetry registry as one
        /// JSON object instead of the legacy `key=value` line.
        json: bool,
    },
    /// Suppress per-`PUSH` `OK` acknowledgements for this session.
    Noack,
    /// Liveness probe.
    Ping,
    /// Capability probe for [wire protocol v2](v2); answered `OK v2`
    /// without changing the session's mode.
    Hello,
    /// Switch the session's inbound stream to binary [v2 frames](v2).
    Upgrade,
    /// Close this session.
    Quit,
    /// Gracefully shut the whole daemon down.
    Shutdown,
}

/// Parses one request line. Returns `Ok(None)` for blank lines (which
/// are ignored) and `Err` with a human-readable reason for malformed
/// input — the reason is sent back verbatim in the `ERR` reply.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (command, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match command {
        "PUSH" => {
            let (path, t_secs) = split_push(rest)?;
            Ok(Some(Request::Push { path: path.to_string(), t_secs }))
        }
        "SUBSCRIBE" => {
            if rest.is_empty() {
                return Ok(Some(Request::Subscribe { from: None }));
            }
            let Some(unit) = rest.strip_prefix("FROM").map(str::trim) else {
                return Err("SUBSCRIBE takes no arguments except FROM <unit>".to_string());
            };
            let from = unit.parse::<u64>().map_err(|_| {
                format!("SUBSCRIBE FROM unit `{unit}` is not a non-negative integer")
            })?;
            Ok(Some(Request::Subscribe { from: Some(from) }))
        }
        "QUERY" => parse_query(rest).map(Some),
        "STATS" => match rest {
            "" => Ok(Some(Request::Stats { json: false })),
            "JSON" => Ok(Some(Request::Stats { json: true })),
            _ => Err("STATS takes no arguments except JSON".to_string()),
        },
        "HELLO" => match rest {
            "v2" => Ok(Some(Request::Hello)),
            _ => Err("HELLO recognises only the `v2` capability".to_string()),
        },
        "NOACK" | "PING" | "UPGRADE" | "QUIT" | "SHUTDOWN" => {
            if !rest.is_empty() {
                return Err(format!("{command} takes no arguments"));
            }
            Ok(Some(match command {
                "NOACK" => Request::Noack,
                "PING" => Request::Ping,
                "UPGRADE" => Request::Upgrade,
                "QUIT" => Request::Quit,
                _ => Request::Shutdown,
            }))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Splits the operand list of a `PUSH` request — everything up to the
/// last whitespace field is the category path (which may itself contain
/// spaces), the last field is the timestamp. Borrowed so allocation-free
/// callers (the router's bulk forwarding path) can route on the path
/// slice without materialising a `Request`.
pub(crate) fn split_push(rest: &str) -> Result<(&str, u64), String> {
    // Fast path: a word-at-a-time scan for the last ASCII space, valid
    // when everything after it is ASCII digits — digits are never
    // whitespace, so no whitespace of any kind (ASCII or Unicode) can
    // follow that space and the slow path below would split at the same
    // position. Well-formed `PUSH` lines always take this path.
    if let Some(i) = crate::scan::rfind_space(rest.as_bytes()) {
        let ts = &rest[i + 1..];
        if !ts.is_empty() && ts.bytes().all(|b| b.is_ascii_digit()) {
            let path = rest[..i].trim();
            if path.is_empty() {
                return Err("PUSH category path is empty".to_string());
            }
            let t_secs = ts
                .parse::<u64>()
                .map_err(|_| format!("PUSH timestamp `{ts}` is not a non-negative integer"))?;
            return Ok((path, t_secs));
        }
    }
    let Some((path, ts)) = rest.rsplit_once(char::is_whitespace) else {
        return Err("PUSH needs a category path and a timestamp".to_string());
    };
    let path = path.trim();
    if path.is_empty() {
        return Err("PUSH category path is empty".to_string());
    }
    let t_secs = ts
        .parse::<u64>()
        .map_err(|_| format!("PUSH timestamp `{ts}` is not a non-negative integer"))?;
    Ok((path, t_secs))
}

/// Parses the operand list of a `QUERY` request:
/// `<from> <to> [PREFIX <path>] [LEVEL <n>] [LIMIT <k>]`, clauses in
/// that order. The prefix path may contain spaces; it runs until the
/// next clause keyword or the end of the line.
fn parse_query(rest: &str) -> Result<Request, String> {
    const USAGE: &str = "QUERY needs <from_unit> <to_unit> [PREFIX <path>] [LEVEL <n>] [LIMIT <k>]";
    let Some((from_s, rest)) = rest.split_once(char::is_whitespace) else {
        return Err(USAGE.to_string());
    };
    let (to_s, mut tail) = match rest.trim().split_once(char::is_whitespace) {
        Some((t, tail)) => (t, tail.trim()),
        None => (rest.trim(), ""),
    };
    let unit = |name: &str, raw: &str| {
        raw.parse::<u64>()
            .map_err(|_| format!("QUERY {name} `{raw}` is not a non-negative integer"))
    };
    let from_unit = unit("from_unit", from_s)?;
    let to_unit = unit("to_unit", to_s)?;
    let mut prefix = None;
    if let Some(r) = tail.strip_prefix("PREFIX") {
        let r = r.trim_start();
        // The path runs to the next clause keyword or the line's end.
        let (path, remainder) = [" LEVEL ", " LIMIT "]
            .iter()
            .filter_map(|kw| r.find(kw).map(|i| (&r[..i], r[i..].trim_start())))
            .min_by_key(|&(p, _)| p.len())
            .unwrap_or((r, ""));
        let path = path.trim();
        if path.is_empty() {
            return Err("QUERY PREFIX needs a category path".to_string());
        }
        prefix = Some(path.to_string());
        tail = remainder;
    }
    let mut level = None;
    if let Some(r) = tail.strip_prefix("LEVEL") {
        let (raw, remainder) = match r.trim_start().split_once(char::is_whitespace) {
            Some((v, rem)) => (v, rem.trim_start()),
            None => (r.trim(), ""),
        };
        level = Some(
            raw.parse::<usize>()
                .map_err(|_| format!("QUERY LEVEL `{raw}` is not a non-negative integer"))?,
        );
        tail = remainder;
    }
    let mut limit = None;
    if let Some(r) = tail.strip_prefix("LIMIT") {
        let raw = r.trim();
        limit = Some(
            raw.parse::<usize>()
                .map_err(|_| format!("QUERY LIMIT `{raw}` is not a positive integer"))?,
        );
        tail = "";
    }
    if !tail.is_empty() {
        return Err(format!("QUERY has trailing input `{tail}`; {USAGE}"));
    }
    Ok(Request::Query { from_unit, to_unit, prefix, level, limit })
}

/// Formats an anomaly event as the `EVENT` broadcast frame (no
/// trailing newline). The path comes last so it may contain spaces.
pub fn format_event(e: &AnomalyEvent) -> String {
    format!(
        "EVENT unit={} time={} level={} kind={} actual={} forecast={} path={}",
        e.unit, e.time_secs, e.level, e.kind, e.actual, e.forecast, e.path
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_parses_with_spaces_in_path() {
        assert_eq!(
            parse_request("PUSH TV/No Service 1234").unwrap(),
            Some(Request::Push { path: "TV/No Service".to_string(), t_secs: 1234 })
        );
        assert_eq!(
            parse_request("  PUSH a/b 0 ").unwrap(),
            Some(Request::Push { path: "a/b".to_string(), t_secs: 0 })
        );
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_request("SUBSCRIBE").unwrap(), Some(Request::Subscribe { from: None }));
        assert_eq!(parse_request("STATS").unwrap(), Some(Request::Stats { json: false }));
        assert_eq!(parse_request("STATS JSON").unwrap(), Some(Request::Stats { json: true }));
        assert_eq!(parse_request("NOACK").unwrap(), Some(Request::Noack));
        assert_eq!(parse_request("PING").unwrap(), Some(Request::Ping));
        assert_eq!(parse_request("QUIT").unwrap(), Some(Request::Quit));
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Some(Request::Shutdown));
        assert_eq!(parse_request("   ").unwrap(), None, "blank lines are ignored");
    }

    #[test]
    fn hello_and_upgrade_parse() {
        assert_eq!(parse_request("HELLO v2").unwrap(), Some(Request::Hello));
        assert_eq!(parse_request("UPGRADE").unwrap(), Some(Request::Upgrade));
        assert!(parse_request("HELLO").unwrap_err().contains("v2"));
        assert!(parse_request("HELLO v3").unwrap_err().contains("v2"));
        assert!(parse_request("UPGRADE now").unwrap_err().contains("no arguments"));
    }

    #[test]
    fn split_push_fast_and_slow_paths_agree() {
        // Fast path (all-digit tail after an ASCII space) and the
        // rsplit_once fallback must be indistinguishable.
        for rest in ["a/b 12", "TV/No Service 1712345678", "a  7", "sp ace\u{a0}path 9", "x 00042"]
        {
            let slow = rest
                .rsplit_once(char::is_whitespace)
                .map(|(p, t)| (p.trim(), t.parse::<u64>().unwrap()))
                .unwrap();
            assert_eq!(split_push(rest), Ok(slow), "{rest:?}");
        }
        // Non-digit tails (signs, unicode digits, floats) fall back —
        // and keep the old semantics (`u64::parse` accepts a `+`).
        assert_eq!(split_push("a/b +12"), Ok(("a/b", 12)));
        assert!(split_push("a/b 1.5").unwrap_err().contains("1.5"));
        assert!(!split_push("a/b \u{0661}").unwrap_err().is_empty());
        // Overflow still errors through the fast path.
        assert!(split_push("a/b 99999999999999999999999").is_err());
    }

    #[test]
    fn subscribe_from_parses() {
        assert_eq!(
            parse_request("SUBSCRIBE FROM 17").unwrap(),
            Some(Request::Subscribe { from: Some(17) })
        );
        assert!(parse_request("SUBSCRIBE FROM").unwrap_err().contains("not a non-negative"));
        assert!(parse_request("SUBSCRIBE FROM x").unwrap_err().contains("`x`"));
        assert!(parse_request("SUBSCRIBE now").unwrap_err().contains("FROM"));
    }

    #[test]
    fn query_parses_all_clauses() {
        assert_eq!(
            parse_request("QUERY 3 9").unwrap(),
            Some(Request::Query {
                from_unit: 3,
                to_unit: 9,
                prefix: None,
                level: None,
                limit: None
            })
        );
        assert_eq!(
            parse_request("QUERY 0 5 PREFIX TV/No Service LEVEL 2 LIMIT 10").unwrap(),
            Some(Request::Query {
                from_unit: 0,
                to_unit: 5,
                prefix: Some("TV/No Service".to_string()),
                level: Some(2),
                limit: Some(10),
            })
        );
        assert_eq!(
            parse_request("QUERY 0 5 PREFIX a/b").unwrap(),
            Some(Request::Query {
                from_unit: 0,
                to_unit: 5,
                prefix: Some("a/b".to_string()),
                level: None,
                limit: None,
            })
        );
        assert_eq!(
            parse_request("QUERY 0 5 LIMIT 3").unwrap(),
            Some(Request::Query {
                from_unit: 0,
                to_unit: 5,
                prefix: None,
                level: None,
                limit: Some(3)
            })
        );
    }

    #[test]
    fn query_rejects_malformed_input() {
        assert!(parse_request("QUERY").unwrap_err().contains("QUERY needs"));
        assert!(parse_request("QUERY 1").unwrap_err().contains("QUERY needs"));
        assert!(parse_request("QUERY a 2").unwrap_err().contains("from_unit"));
        assert!(parse_request("QUERY 1 b").unwrap_err().contains("to_unit"));
        assert!(parse_request("QUERY 1 2 PREFIX").unwrap_err().contains("PREFIX"));
        assert!(parse_request("QUERY 1 2 LEVEL x").unwrap_err().contains("LEVEL"));
        assert!(parse_request("QUERY 1 2 LIMIT -1").unwrap_err().contains("LIMIT"));
        assert!(parse_request("QUERY 1 2 BOGUS").unwrap_err().contains("trailing"));
    }

    #[test]
    fn malformed_lines_produce_reasons() {
        assert!(parse_request("FLY me to the moon").unwrap_err().contains("unknown command"));
        assert!(parse_request("PUSH").unwrap_err().contains("needs"));
        assert!(parse_request("PUSH lonely-token").unwrap_err().contains("needs"));
        assert!(parse_request("PUSH a/b notanumber").unwrap_err().contains("notanumber"));
        assert!(parse_request("PUSH  42").unwrap_err().contains("needs"));
        assert!(parse_request("STATS now").unwrap_err().contains("no arguments"));
        assert!(parse_request("push a 1").unwrap_err().contains("unknown command"));
    }

    #[test]
    fn event_frame_puts_path_last() {
        let mut tree = tiresias_hierarchy::Tree::new("All");
        let e = AnomalyEvent {
            node: tree.insert_str("TV/No Service"),
            path: "TV/No Service".parse().unwrap(),
            level: 2,
            unit: 9,
            time_secs: 8100,
            actual: 80.0,
            forecast: 8.25,
            kind: tiresias_core::AnomalyKind::Spike,
        };
        let frame = format_event(&e);
        assert!(frame.ends_with("path=TV/No Service"), "{frame}");
        assert!(frame.contains("unit=9"));
        assert!(frame.contains("kind=spike"));
    }
}
