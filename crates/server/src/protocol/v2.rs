//! Wire protocol v2: length-prefixed binary frames with per-session
//! label dictionaries and varint delta timestamps.
//!
//! The text protocol ([the parent module](super)) stays the default —
//! v2 is negotiated by capability: a client probes with `HELLO v2`
//! (text), switches with `UPGRADE`, and from the next byte the inbound
//! stream is a sequence of frames. **Replies stay text lines** in both
//! directions' framing: the server acknowledges a whole DATA frame
//! with one `OK frame=<seq> n=<accepted> late=<l> ahead=<a>` line
//! instead of per-record `OK`s, which is what lets acked bulk feeds
//! stop paying a reply round per flush.
//!
//! # Frame layout
//!
//! ```text
//! offset  bytes  field
//! 0       2      magic "T2"
//! 2       1      version (2)
//! 3       1      kind: 0 DATA, 1 END, 2 PING
//! 4       4      seq (u32 LE, per-session, client-assigned)
//! 8       4      payload length (u32 LE; 0 for END/PING)
//! 12      4      payload CRC-32 (IEEE, LE; CRC of b"" for empty)
//! 16      4      header CRC-32 over bytes 0..16 (LE)
//! 20      —      payload
//! ```
//!
//! DATA payload:
//!
//! ```text
//! uvarint  new dictionary entries
//!   repeat: uvarint label byte length, then the UTF-8 label bytes
//!           (ids assigned sequentially: first entry ever = id 0)
//! uvarint  record count
//!   repeat: uvarint label id, uvarint zigzag(timestamp delta)
//! ```
//!
//! Timestamps are delta-coded against the previous record **of the
//! same frame** (the first record's delta is against 0), zigzag-coded
//! so mildly out-of-order feeds stay compact, with wrapping `u64`
//! arithmetic so every timestamp value round-trips. Frames are
//! therefore independently decodable given the session dictionary.
//!
//! # Dictionary lifecycle
//!
//! The label dictionary is **per connection and append-only**: the
//! encoder assigns the next id to each label it has not sent before
//! and ships the label bytes once, in the same frame that first
//! references it; the decoder appends entries in order. It survives
//! `END`/`UPGRADE` round trips on the same connection and dies with
//! it. Because a skipped or rejected DATA frame would leave the two
//! sides' dictionaries disagreeing, any malformed frame is answered
//! with one `ERR` line and the session is closed — a fresh connection
//! is the resync point. [`MAX_DICT_ENTRIES`] bounds a session's
//! dictionary; a frame pushing past it is malformed.

use tiresias_hierarchy::FxHashMap;

/// Frame magic: `"T2"`.
pub const MAGIC: [u8; 2] = *b"T2";
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 2;
/// Fixed byte length of a frame header.
pub const HEADER_BYTES: usize = 20;
/// Upper bound on a frame payload; larger lengths are refused before
/// any allocation (a real DATA frame is bounded by the sender's batch
/// size, far below this).
pub const MAX_PAYLOAD_BYTES: u32 = 4 << 20;
/// Upper bound on one label's byte length.
pub const MAX_LABEL_BYTES: u64 = 4096;
/// Upper bound on a session dictionary (distinct labels per
/// connection).
pub const MAX_DICT_ENTRIES: usize = 1 << 20;

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven — the same
/// checksum the WAL and segment tiers use on disk.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A batch of records (dictionary entries + delta-coded records).
    Data,
    /// Return the session to the text protocol (`OK text` reply).
    End,
    /// Liveness fence; answered `PONG frame=<seq>` even under `NOACK`.
    Ping,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::End => 1,
            FrameKind::Ping => 2,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::End),
            2 => Some(FrameKind::Ping),
            _ => None,
        }
    }
}

/// A validated frame header.
#[derive(Debug, Clone, Copy)]
pub struct FrameHeader {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Client-assigned sequence number, echoed in the ack line.
    pub seq: u32,
    /// Payload byte length (already bounded by [`MAX_PAYLOAD_BYTES`]).
    pub payload_len: u32,
    /// Expected CRC-32 of the payload bytes.
    pub payload_crc: u32,
}

/// Assembles a frame header for `payload` into a fixed array.
fn header_bytes(kind: FrameKind, seq: u32, payload: &[u8]) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[0..2].copy_from_slice(&MAGIC);
    h[2] = VERSION;
    h[3] = kind.to_byte();
    h[4..8].copy_from_slice(&seq.to_le_bytes());
    h[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[12..16].copy_from_slice(&crc32(payload).to_le_bytes());
    let hcrc = crc32(&h[0..16]);
    h[16..20].copy_from_slice(&hcrc.to_le_bytes());
    h
}

/// A complete END or PING frame (empty payload) as fixed bytes.
pub fn control_frame(kind: FrameKind, seq: u32) -> [u8; HEADER_BYTES] {
    header_bytes(kind, seq, &[])
}

/// Validates and decodes a frame header. The error text is sent back
/// verbatim in the `ERR` reply; after any header error the byte stream
/// can no longer be trusted and the session must close.
pub fn decode_header(h: &[u8; HEADER_BYTES]) -> Result<FrameHeader, String> {
    if h[0..2] != MAGIC {
        return Err("bad frame magic".to_string());
    }
    let expected = u32::from_le_bytes(h[16..20].try_into().expect("4 bytes"));
    if crc32(&h[0..16]) != expected {
        return Err("frame header CRC mismatch".to_string());
    }
    if h[2] != VERSION {
        return Err(format!("unsupported frame version {}", h[2]));
    }
    let Some(kind) = FrameKind::from_byte(h[3]) else {
        return Err(format!("unknown frame kind {}", h[3]));
    };
    let payload_len = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(format!(
            "frame payload of {payload_len} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte bound"
        ));
    }
    if kind != FrameKind::Data && payload_len != 0 {
        return Err("control frame with a payload".to_string());
    }
    Ok(FrameHeader {
        kind,
        seq: u32::from_le_bytes(h[4..8].try_into().expect("4 bytes")),
        payload_len,
        payload_crc: u32::from_le_bytes(h[12..16].try_into().expect("4 bytes")),
    })
}

/// Appends `v` as a LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 unsigned varint at `*pos`, advancing it.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let Some(&b) = buf.get(*pos) else {
            return Err("truncated varint".to_string());
        };
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            return Ok(v);
        }
    }
    Err("varint overflows 64 bits".to_string())
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// The sending half: interns labels into the per-connection dictionary
/// and assembles DATA frames.
///
/// `add` and `finish` must be paired per frame: `add` stages a record
/// (assigning dictionary ids as a side effect) and `finish` ships the
/// staged records — dropping staged records instead of finishing would
/// desync the dictionary from the receiver.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    ids: FxHashMap<String, u32>,
    dict_buf: Vec<u8>,
    rec_buf: Vec<u8>,
    pending_entries: u64,
    pending_records: u64,
    prev_ts: u64,
}

impl FrameEncoder {
    /// A fresh encoder with an empty dictionary (one per connection).
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Distinct labels interned so far.
    pub fn dict_len(&self) -> usize {
        self.ids.len()
    }

    /// Records staged for the current frame.
    pub fn pending(&self) -> usize {
        self.pending_records as usize
    }

    /// Stages one record into the current frame.
    pub fn add(&mut self, label: &str, t_secs: u64) {
        let next = self.ids.len() as u32;
        let id = *self.ids.entry(label.to_string()).or_insert(next);
        if id == next {
            put_uvarint(&mut self.dict_buf, label.len() as u64);
            self.dict_buf.extend_from_slice(label.as_bytes());
            self.pending_entries += 1;
        }
        put_uvarint(&mut self.rec_buf, u64::from(id));
        put_uvarint(&mut self.rec_buf, zigzag(t_secs.wrapping_sub(self.prev_ts) as i64));
        self.prev_ts = t_secs;
        self.pending_records += 1;
    }

    /// Assembles the staged records into one DATA frame appended to
    /// `out` and resets the staging area for the next frame.
    pub fn finish(&mut self, seq: u32, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(self.dict_buf.len() + self.rec_buf.len() + 2 * 10);
        put_uvarint(&mut payload, self.pending_entries);
        payload.extend_from_slice(&self.dict_buf);
        put_uvarint(&mut payload, self.pending_records);
        payload.extend_from_slice(&self.rec_buf);
        out.extend_from_slice(&header_bytes(FrameKind::Data, seq, &payload));
        out.extend_from_slice(&payload);
        self.dict_buf.clear();
        self.rec_buf.clear();
        self.pending_entries = 0;
        self.pending_records = 0;
        self.prev_ts = 0;
    }

    /// Convenience: one DATA frame carrying `records`, appended to
    /// `out`.
    pub fn encode_data<S: AsRef<str>>(
        &mut self,
        seq: u32,
        records: &[(S, u64)],
        out: &mut Vec<u8>,
    ) {
        debug_assert_eq!(self.pending(), 0, "staged records from an unfinished frame");
        for (label, t_secs) in records {
            self.add(label.as_ref(), *t_secs);
        }
        self.finish(seq, out);
    }
}

/// Consumes a DATA payload's dictionary section, appending the new
/// entries to `dict` (ids are implicit: entry order). Returns the
/// number of new entries and the offset where the record section
/// starts.
pub fn decode_dict(payload: &[u8], dict: &mut Vec<String>) -> Result<(usize, usize), String> {
    let mut pos = 0usize;
    let count = get_uvarint(payload, &mut pos)?;
    if count as usize > MAX_DICT_ENTRIES.saturating_sub(dict.len()) {
        return Err(format!(
            "dictionary would exceed {MAX_DICT_ENTRIES} entries ({} + {count} new)",
            dict.len()
        ));
    }
    for _ in 0..count {
        let len = get_uvarint(payload, &mut pos)?;
        if len > MAX_LABEL_BYTES {
            return Err(format!("label of {len} bytes exceeds the {MAX_LABEL_BYTES}-byte bound"));
        }
        let len = len as usize;
        let Some(bytes) = payload.get(pos..pos + len) else {
            return Err("truncated dictionary entry".to_string());
        };
        pos += len;
        let label =
            std::str::from_utf8(bytes).map_err(|_| "dictionary label is not UTF-8".to_string())?;
        if label.is_empty() {
            return Err("empty dictionary label".to_string());
        }
        dict.push(label.to_string());
    }
    Ok((count as usize, pos))
}

/// Iterates a DATA payload's record section: `(label id, timestamp)`
/// pairs, ids validated against the (already extended) dictionary
/// length, deltas resolved to absolute timestamps. Yields one `Err`
/// and stops on malformed input, including trailing bytes after the
/// declared record count.
pub struct RecordIter<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: u64,
    prev_ts: u64,
    dict_len: u64,
    failed: bool,
}

/// Starts iterating the record section at `offset` (as returned by
/// [`decode_dict`]).
pub fn records(payload: &[u8], offset: usize, dict_len: usize) -> Result<RecordIter<'_>, String> {
    let mut pos = offset;
    let remaining = get_uvarint(payload, &mut pos)?;
    Ok(RecordIter {
        buf: payload,
        pos,
        remaining,
        prev_ts: 0,
        dict_len: dict_len as u64,
        failed: false,
    })
}

impl Iterator for RecordIter<'_> {
    type Item = Result<(u32, u64), String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.remaining == 0 {
            if self.pos != self.buf.len() {
                self.failed = true;
                return Some(Err(format!(
                    "{} trailing bytes after the last record",
                    self.buf.len() - self.pos
                )));
            }
            return None;
        }
        self.remaining -= 1;
        let mut step = || -> Result<(u32, u64), String> {
            let id = get_uvarint(self.buf, &mut self.pos)?;
            if id >= self.dict_len {
                return Err(format!(
                    "label id {id} outside the {}-entry dictionary",
                    self.dict_len
                ));
            }
            let delta = unzigzag(get_uvarint(self.buf, &mut self.pos)?);
            self.prev_ts = self.prev_ts.wrapping_add(delta as u64);
            Ok((id as u32, self.prev_ts))
        };
        let item = step();
        if item.is_err() {
            self.failed = true;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(payload: &[u8], dict: &mut Vec<String>) -> Result<Vec<(String, u64)>, String> {
        let (_, offset) = decode_dict(payload, dict)?;
        let mut out = Vec::new();
        for item in records(payload, offset, dict.len())? {
            let (id, ts) = item?;
            out.push((dict[id as usize].clone(), ts));
        }
        Ok(out)
    }

    /// Splits a byte stream of frames into (header, payload) pairs.
    fn split_frames(mut bytes: &[u8]) -> Vec<(FrameHeader, Vec<u8>)> {
        let mut frames = Vec::new();
        while !bytes.is_empty() {
            let header: [u8; HEADER_BYTES] = bytes[..HEADER_BYTES].try_into().unwrap();
            let header = decode_header(&header).unwrap();
            let end = HEADER_BYTES + header.payload_len as usize;
            let payload = bytes[HEADER_BYTES..end].to_vec();
            assert_eq!(crc32(&payload), header.payload_crc);
            frames.push((header, payload));
            bytes = &bytes[end..];
        }
        frames
    }

    #[test]
    fn uvarint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert!(get_uvarint(&[0x80], &mut pos).unwrap_err().contains("truncated"));
        let mut pos = 0;
        assert!(get_uvarint(&[0xFF; 10], &mut pos).unwrap_err().contains("overflows"));
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn frames_round_trip_with_a_shared_dictionary() {
        let mut enc = FrameEncoder::new();
        let mut bytes = Vec::new();
        let batch1: Vec<(&str, u64)> = vec![("a/x", 100), ("b/y", 90), ("a/x", 110)];
        let batch2: Vec<(&str, u64)> = vec![("a/x", 120), ("c/z", 0), ("b/y", u64::MAX)];
        enc.encode_data(7, &batch1, &mut bytes);
        enc.encode_data(8, &batch2, &mut bytes);
        assert_eq!(enc.dict_len(), 3);

        let frames = split_frames(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0.seq, 7);
        assert_eq!(frames[1].0.seq, 8);
        let mut dict = Vec::new();
        let got1 = decode_all(&frames[0].1, &mut dict).unwrap();
        assert_eq!(dict, vec!["a/x", "b/y"], "labels ship once, in first-use order");
        let got2 = decode_all(&frames[1].1, &mut dict).unwrap();
        assert_eq!(dict.len(), 3, "second frame only adds the new label");
        let want =
            |b: &[(&str, u64)]| b.iter().map(|&(l, t)| (l.to_string(), t)).collect::<Vec<_>>();
        assert_eq!(got1, want(&batch1));
        assert_eq!(got2, want(&batch2));
    }

    #[test]
    fn empty_data_frame_round_trips() {
        let mut enc = FrameEncoder::new();
        let mut bytes = Vec::new();
        enc.encode_data::<&str>(0, &[], &mut bytes);
        let frames = split_frames(&bytes);
        let mut dict = Vec::new();
        assert_eq!(decode_all(&frames[0].1, &mut dict), Ok(vec![]));
    }

    #[test]
    fn header_rejects_corruption() {
        let good = control_frame(FrameKind::Ping, 3);
        assert_eq!(decode_header(&good).unwrap().seq, 3);

        let mut bad = good;
        bad[0] = b'X';
        assert!(decode_header(&bad).unwrap_err().contains("magic"));

        // Any single corrupt bit inside the protected region trips the
        // header CRC (or the magic check).
        for bit in 0..(16 * 8) {
            let mut bad = good;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_header(&bad).is_err(), "bit {bit} must not pass");
        }

        // A wrong version/kind with a *recomputed* CRC is still refused.
        let mut bad = good;
        bad[2] = 3;
        let crc = crc32(&bad[0..16]).to_le_bytes();
        bad[16..20].copy_from_slice(&crc);
        assert!(decode_header(&bad).unwrap_err().contains("version"));
        let mut bad = good;
        bad[3] = 9;
        let crc = crc32(&bad[0..16]).to_le_bytes();
        bad[16..20].copy_from_slice(&crc);
        assert!(decode_header(&bad).unwrap_err().contains("kind"));
    }

    #[test]
    fn header_rejects_oversized_payloads() {
        let mut h = header_bytes(FrameKind::Data, 0, &[]);
        h[8..12].copy_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
        let crc = crc32(&h[0..16]).to_le_bytes();
        h[16..20].copy_from_slice(&crc);
        assert!(decode_header(&h).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn payload_rejects_bad_ids_and_trailing_bytes() {
        let mut enc = FrameEncoder::new();
        let mut bytes = Vec::new();
        enc.encode_data(0, &[("a", 1u64)], &mut bytes);
        let (_, payload) = split_frames(&bytes).pop().unwrap();

        // Truncation anywhere in the payload errors, never panics.
        for cut in 0..payload.len() {
            let mut dict = Vec::new();
            assert!(decode_all(&payload[..cut], &mut dict).is_err(), "cut {cut}");
        }
        // Trailing garbage is refused.
        let mut long = payload.clone();
        long.push(0);
        let mut dict = Vec::new();
        assert!(decode_all(&long, &mut dict).unwrap_err().contains("trailing"));
        // A record referencing an unknown id is refused.
        let mut raw = Vec::new();
        put_uvarint(&mut raw, 0); // no dict entries
        put_uvarint(&mut raw, 1); // one record
        put_uvarint(&mut raw, 5); // id 5 — unknown
        put_uvarint(&mut raw, 0);
        let mut dict = Vec::new();
        assert!(decode_all(&raw, &mut dict).unwrap_err().contains("label id"));
    }

    #[test]
    fn dictionary_bounds_are_enforced() {
        let mut raw = Vec::new();
        put_uvarint(&mut raw, 1);
        put_uvarint(&mut raw, MAX_LABEL_BYTES + 1);
        let mut dict = Vec::new();
        assert!(decode_dict(&raw, &mut dict).unwrap_err().contains("label of"));

        let mut raw = Vec::new();
        put_uvarint(&mut raw, MAX_DICT_ENTRIES as u64 + 1);
        let mut dict = Vec::new();
        assert!(decode_dict(&raw, &mut dict).unwrap_err().contains("dictionary"));

        let mut raw = Vec::new();
        put_uvarint(&mut raw, 1);
        put_uvarint(&mut raw, 0); // empty label
        let mut dict = Vec::new();
        assert!(decode_dict(&raw, &mut dict).unwrap_err().contains("empty"));
    }

    /// Locks the exact control-frame bytes: CI's `/dev/tcp` smoke
    /// writes these via `printf`, so a codec change that would break
    /// the handshake constants must fail here first.
    #[test]
    fn control_frame_bytes_are_stable() {
        let hex = |frame: [u8; HEADER_BYTES]| {
            frame.iter().map(|b| format!("\\x{b:02x}")).collect::<String>()
        };
        assert_eq!(
            hex(control_frame(FrameKind::Ping, 0)),
            "\\x54\\x32\\x02\\x02\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\
             \\x10\\xae\\xc0\\x15"
        );
        assert_eq!(
            hex(control_frame(FrameKind::End, 1)),
            "\\x54\\x32\\x02\\x01\\x01\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\
             \\xb1\\x8e\\xaf\\x33"
        );
    }
}
