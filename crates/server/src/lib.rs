//! `tiresias-server` — a live streaming-ingestion daemon over the
//! sharded Tiresias engine.
//!
//! The offline engines ([`tiresias_core::Tiresias`] and
//! [`tiresias_core::ShardedTiresias`]) replay files: timeunits close
//! when a record of a later unit arrives. This crate turns the sharded
//! engine into a long-running service for *operational* traffic:
//!
//! * a TCP listener accepts concurrent clients speaking a
//!   newline-delimited text protocol ([`protocol`]): `PUSH` records,
//!   `SUBSCRIBE [FROM <unit>]` to the anomaly stream (with gap-free
//!   catch-up replay from retained history), `QUERY` the retained
//!   report store, `STATS` for metrics, `SHUTDOWN` for a graceful
//!   stop;
//! * every session thread admits records through its own clone of the
//!   engine's lock-free [`tiresias_core::IngestHandle`] — validation,
//!   routing and the per-shard ring hand-off never take a server-wide
//!   lock, so concurrent pushers scale with cores instead of queueing
//!   behind one mutex;
//! * a **wall-clock scheduler** closes timeunits on a real-time
//!   cadence with a configurable **grace window** for late records,
//!   instead of relying on monotone input timestamps (the close rules
//!   are documented in the repository README's server section); each
//!   close is one epoch-barrier flip on the
//!   [`tiresias_core::LiveSharded`] back-end, so in-flight pushes land
//!   in a well-defined unit;
//! * anomalies are broadcast to subscribers the moment their unit
//!   closes, through bounded per-session queues with a
//!   drop-the-laggard backpressure policy — and land in a retained,
//!   indexed report store (bounded by `--retain-units`) that answers
//!   `QUERY` off a read-mostly lock and replays missed events to a
//!   re-subscribing laggard;
//! * `SIGTERM`/`SIGINT`/`SHUTDOWN` trigger a graceful drain: every
//!   buffered record is fed to the engine, final events are delivered,
//!   and the engine state is written as a versioned checkpoint
//!   ([`tiresias_core::save_checkpoint`]) so a restarted server
//!   resumes exactly where it left off.
//!
//! Everything is `std`-only (threads + `std::net`), matching the
//! workspace's vendored-dependency constraint.
//!
//! # Example
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use tiresias_core::TiresiasBuilder;
//! use tiresias_server::{Server, ServerConfig};
//!
//! let builder = TiresiasBuilder::new()
//!     .timeunit_secs(60)
//!     .window_len(16)
//!     .threshold(5.0)
//!     .season_length(4)
//!     .sensitivity(2.0, 5.0)
//!     .warmup_units(2)
//!     .shards(2);
//! let server = Server::start(ServerConfig::new(builder))?;
//!
//! let mut client = TcpStream::connect(server.local_addr())?;
//! client.write_all(b"PUSH TV/No Service 30\nPING\n")?;
//! let mut reader = BufReader::new(client.try_clone()?);
//! let mut reply = String::new();
//! reader.read_line(&mut reply)?;
//! assert_eq!(reply.trim(), "OK");
//! reply.clear();
//! reader.read_line(&mut reply)?;
//! assert_eq!(reply.trim(), "PONG");
//!
//! client.write_all(b"SHUTDOWN\n")?;
//! server.join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)] // one documented exception: the signal module
#![warn(missing_docs)]

mod error;
mod hub;
pub mod protocol;
mod route;
mod scan;
mod server;
pub mod signal;
mod state;
mod telemetry;

pub use error::ServerError;
pub use route::{Router, RouterConfig};
pub use server::{Server, ServerConfig, DEFAULT_IDLE_TIMEOUT, DEFAULT_SLOW_MS};
