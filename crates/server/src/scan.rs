//! Word-at-a-time byte scanners shared by the hot paths.
//!
//! `std`'s own `memchr` is not public, and both the router's `NOACK`
//! drain and the text parser's `PUSH` split run a delimiter scan per
//! record — a plain byte loop there costs several milliseconds per
//! million records. Both use the classic SWAR zero-byte trick: XOR the
//! word with the repeated delimiter, then `(w - 0x01…) & !w & 0x80…`
//! is non-zero iff some byte was the delimiter.

/// Repeats `byte` across every lane of a `u64`.
const fn splat(byte: u8) -> u64 {
    u64::from_ne_bytes([byte; 8])
}

const LO: u64 = splat(0x01);
const HI: u64 = splat(0x80);

/// Whether any byte of `word` equals the splatted `target` pattern.
#[inline]
fn word_has(word: u64, target: u64) -> bool {
    let x = word ^ target;
    x.wrapping_sub(LO) & !x & HI != 0
}

/// Position of the first `\n` in `buf`, scanning a word at a time.
pub(crate) fn find_newline(buf: &[u8]) -> Option<usize> {
    const NL: u64 = splat(b'\n');
    let mut chunks = buf.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        if word_has(word, NL) {
            return chunk.iter().position(|&b| b == b'\n').map(|i| offset + i);
        }
        offset += 8;
    }
    chunks.remainder().iter().position(|&b| b == b'\n').map(|i| offset + i)
}

/// Position of the last ASCII space in `buf`, scanning words from the
/// end — the text parser's `PUSH <path> <ts>` split, where the space
/// before the timestamp sits within a word or two of the line's end.
pub(crate) fn rfind_space(buf: &[u8]) -> Option<usize> {
    const SP: u64 = splat(b' ');
    let tail = buf.len() % 8;
    let body = buf.len() - tail;
    if let Some(i) = buf[body..].iter().rposition(|&b| b == b' ') {
        return Some(body + i);
    }
    let mut offset = body;
    while offset >= 8 {
        offset -= 8;
        let chunk = &buf[offset..offset + 8];
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        if word_has(word, SP) {
            return chunk.iter().rposition(|&b| b == b' ').map(|i| offset + i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_newline_matches_naive_scan() {
        for len in 0..40 {
            for pos in 0..len {
                let mut buf = vec![b'x'; len];
                buf[pos] = b'\n';
                assert_eq!(find_newline(&buf), Some(pos), "len {len} pos {pos}");
            }
            assert_eq!(find_newline(&vec![b'x'; len]), None, "len {len}");
        }
    }

    #[test]
    fn find_newline_returns_first_of_many() {
        assert_eq!(find_newline(b"ab\ncd\nef"), Some(2));
        assert_eq!(find_newline(b"\n\n"), Some(0));
    }

    #[test]
    fn rfind_space_matches_naive_scan() {
        for len in 0..40 {
            for pos in 0..len {
                let mut buf = vec![b'x'; len];
                buf[pos] = b' ';
                assert_eq!(rfind_space(&buf), Some(pos), "len {len} pos {pos}");
            }
            assert_eq!(rfind_space(&vec![b'x'; len]), None, "len {len}");
        }
    }

    #[test]
    fn rfind_space_returns_last_of_many() {
        assert_eq!(rfind_space(b"a b c d"), Some(5));
        assert_eq!(rfind_space(b"PUSH region-0/pop-1/service 42 1234567"), Some(30));
    }
}
