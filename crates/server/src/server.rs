//! The daemon itself: listener, per-client session threads, the
//! wall-clock scheduler and the graceful-shutdown choreography.
//!
//! # The lock-free admission hot path
//!
//! Every session thread owns a clone of the live engine's
//! [`IngestHandle`]: a `PUSH` is parsed, batched with its pipelined
//! neighbours and admitted straight into the engine's per-shard rings
//! — validation, routing and the late/ahead counters are all atomic in
//! `tiresias-core`, and **no server-wide lock is taken**. The
//! [`Inner`] mutex guards only the serialized back-end work (timeunit
//! closes on the scheduler thread, `STATS` snapshots, the shutdown
//! drain + checkpoint), so a thousand concurrent pushers never queue
//! behind a `STATS` reader or a closing timeunit — and vice versa: a
//! close stalls admissions only for the microseconds its watermark
//! barrier is held.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tiresias_core::{
    load_checkpoint_meta, Admission, AnomalyEvent, CheckpointEngine, IngestHandle, LiveSharded,
    RebalanceConfig, ReportReader, SegmentStore, TiresiasBuilder, Wal, WalEntry, WalSyncPolicy,
    DEFAULT_MAX_AHEAD_UNITS, DEFAULT_SEGMENT_BYTES, DEFAULT_WAL_SEGMENT_BYTES,
};
use tiresias_hierarchy::{first_segment, first_segment_hash, CategoryPath, FxHashMap};
use tiresias_sketch::SpaceSaving;
use tiresias_telemetry::{Field, MetricsServer, SlowLog};

use crate::error::ServerError;
use crate::hub::Hub;
use crate::protocol::{parse_request, v2, Request, DEFAULT_QUERY_LIMIT, MAX_QUERY_LIMIT};
use crate::signal;
use crate::state::{Durability, Inner};
use crate::telemetry::{self, ProtoCounters, ServerTelemetry};

/// How often blocked session reads wake up to check the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// How often the scheduler thread reaps finished session threads.
const SESSION_SWEEP: Duration = Duration::from_secs(1);

/// Replay frames copied per state-lock acquisition during a
/// `SUBSCRIBE FROM` catch-up (the lock is released between chunks so a
/// long replay never stalls the scheduler).
const REPLAY_CHUNK: usize = 256;

/// Monitored top-level labels in the Space-Saving hot-path gauge.
const TOP_PATHS_CAPACITY: usize = 32;
/// Labels reported in `STATS top_paths=`.
const TOP_PATHS_REPORTED: usize = 5;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (`:0` picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Detector configuration; must include `.shards(n)` as desired.
    /// Ignored when a checkpoint is resumed (the checkpoint carries its
    /// own configuration).
    pub builder: TiresiasBuilder,
    /// Grace window for late records (see the state-module docs).
    pub grace: Duration,
    /// Scheduler tick interval.
    pub tick: Duration,
    /// Upper bound on the records one session admits per engine call
    /// (pipelined `PUSH` lines batch up to this many under a single
    /// admission).
    pub flush_records: usize,
    /// Per-session outbound queue bound (replies + subscribed events).
    pub subscriber_queue: usize,
    /// How many timeunits ahead of the open unit a record may be;
    /// records further ahead are refused with `ERR` and counted
    /// (`--max-ahead`, default [`DEFAULT_MAX_AHEAD_UNITS`]).
    pub max_ahead_units: u64,
    /// Retention budget of the report store in closed timeunits
    /// (`--retain-units`): the oldest units evict once exceeded.
    /// `None` keeps whatever the engine (or a resumed checkpoint)
    /// already has — unbounded for a fresh engine.
    pub retain_units: Option<u64>,
    /// Checkpoint file: loaded on start if present, written on
    /// graceful shutdown. With a [`ServerConfig::data_dir`] this
    /// defaults to `<data_dir>/checkpoint.json`; setting it explicitly
    /// overrides that location.
    pub checkpoint: Option<PathBuf>,
    /// Durable data directory (`--data-dir`): holds the write-ahead
    /// log (`wal/`), the spilled retention segments (`segments/`) and
    /// the graceful-shutdown checkpoint (`checkpoint.json`). On start
    /// the WAL frames newer than the checkpoint's watermark are
    /// replayed through the live engine, so acked admissions survive
    /// a crash. `None` runs fully in memory, exactly as before.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy (`--wal-sync`): `every` batch, a background
    /// `interval` flush, or `none` (rely on the OS page cache). Only
    /// meaningful with a [`ServerConfig::data_dir`].
    pub wal_sync: WalSyncPolicy,
    /// Install `SIGTERM`/`SIGINT` handlers and shut down gracefully on
    /// either (the CLI sets this; tests drive `SHUTDOWN` instead).
    pub handle_signals: bool,
    /// Reap sessions with no inbound traffic for this long
    /// (`--idle-timeout-ms`; `None` disables). A half-open client — a
    /// crashed router, a peer that vanished without a FIN — would
    /// otherwise park its session thread forever. Sessions holding a
    /// live subscription are exempt (they are legitimately quiet);
    /// every other long-lived client keeps its session alive by
    /// sending `PING` within the window. Reaped sessions are counted
    /// in `STATS reaped_sessions=`.
    pub idle_timeout: Option<Duration>,
    /// Prometheus endpoint address (`--metrics-addr`): serves
    /// `GET /metrics` on its own listener thread, fully separate from
    /// the wire-protocol port. `None` disables the endpoint (`STATS
    /// JSON` still works — the registry is always assembled).
    pub metrics_addr: Option<String>,
    /// Structured slow-op log path (`--slow-log`): operations slower
    /// than [`ServerConfig::slow_ms`] append one NDJSON line each.
    /// `None` disables the log.
    pub slow_log: Option<PathBuf>,
    /// Slow-op threshold in milliseconds (`--slow-ms`); only meaningful
    /// with a [`ServerConfig::slow_log`].
    pub slow_ms: u64,
    /// Whether the engine's hot paths carry latency histograms
    /// (default). `false` runs the engine untelemetered — zero clock
    /// reads on admission — and is the baseline the benchmark's
    /// `telemetry_tax_pct` compares against.
    pub telemetry: bool,
    /// Skew-adaptive shard rebalancing policy (`--rebalance`,
    /// `--balance-threshold`). Disabled by default: labels stay on
    /// their hash-assigned shard. When enabled, per-epoch load
    /// measurements repin hot top-level labels at close barriers until
    /// the worst/mean shard-load ratio falls under the threshold —
    /// with byte-identical output either way.
    pub rebalance: RebalanceConfig,
}

impl ServerConfig {
    /// Defaults around the given detector configuration: ephemeral
    /// loopback port, 2 s grace, 50 ms tick, 8192-record batches,
    /// 1024-line subscriber queues, 1000-unit ahead bound, no
    /// checkpoint, no signal handlers.
    pub fn new(builder: TiresiasBuilder) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            builder,
            grace: Duration::from_secs(2),
            tick: Duration::from_millis(50),
            flush_records: 8192,
            subscriber_queue: 1024,
            max_ahead_units: DEFAULT_MAX_AHEAD_UNITS,
            retain_units: None,
            checkpoint: None,
            data_dir: None,
            wal_sync: WalSyncPolicy::Interval(WalSyncPolicy::DEFAULT_INTERVAL),
            handle_signals: false,
            idle_timeout: Some(DEFAULT_IDLE_TIMEOUT),
            metrics_addr: None,
            slow_log: None,
            slow_ms: DEFAULT_SLOW_MS,
            telemetry: true,
            rebalance: RebalanceConfig::default(),
        }
    }
}

/// Default [`ServerConfig::idle_timeout`]: generous enough that no
/// interactive client ever notices, short enough that leaked half-open
/// connections don't accumulate threads for days.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(600);

/// Default [`ServerConfig::slow_ms`]: well above every healthy
/// close/query/fsync, low enough to catch a stalling disk or a
/// pathological query early.
pub const DEFAULT_SLOW_MS: u64 = 100;

/// The Space-Saving top-k gauge over top-level path labels: a cheap
/// answer to "what is hot right now" that costs one sketch update per
/// admission batch, reported as `STATS top_paths=label:count|…`.
struct TopPaths {
    sketch: SpaceSaving,
    /// Label text per monitored key hash (pruned alongside the
    /// sketch's monitored set so churn cannot grow it unboundedly).
    labels: HashMap<u64, String>,
}

impl TopPaths {
    fn new() -> Self {
        TopPaths { sketch: SpaceSaving::new(TOP_PATHS_CAPACITY), labels: HashMap::new() }
    }
}

/// Per-batch state of the top-paths gauge: the batch's per-label
/// aggregation slots (the per-record hash list lives in a session
/// scratch buffer, reused across batches).
struct PushGauge {
    agg: FxHashMap<u64, (u64, String)>,
}

/// Shared flags and shutdown choreography.
struct Control {
    /// All loops (accept, scheduler, sessions) exit when set.
    stop: AtomicBool,
    /// Guards the drain + checkpoint so it runs exactly once.
    shutdown_started: AtomicBool,
    addr: SocketAddr,
    checkpoint: Option<PathBuf>,
}

/// Everything session threads need.
struct Shared {
    /// The concurrently shareable ingest front-end — the `PUSH` path.
    front: IngestHandle,
    /// The read path: retained report store behind a read-mostly lock.
    /// `QUERY` sessions read here directly — never through `inner` —
    /// so queries contend only with the per-close merge, never with
    /// admission.
    reader: ReportReader,
    /// The serialized back-end (closes, drain, checkpoint, `STATS`).
    inner: Mutex<Inner>,
    /// `Arc` so the telemetry registry's derived gauges can read
    /// subscriber counts without touching `inner`.
    hub: Arc<Hub>,
    /// The assembled metric registry plus the request-path histograms
    /// and the optional slow-op log.
    telem: ServerTelemetry,
    /// Hot-path gauge (see [`TopPaths`]).
    top: Mutex<TopPaths>,
    control: Control,
    queue_bound: usize,
    batch_cap: usize,
    idle_timeout: Option<Duration>,
    /// Sessions closed by the idle reaper (`STATS reaped_sessions=`).
    reaped_sessions: AtomicU64,
    /// Wire-protocol accounting: per-protocol session gauges and v2
    /// frame/dictionary totals, shared with the telemetry registry.
    proto: ProtoCounters,
}

impl Shared {
    /// Runs the graceful shutdown exactly once: stop admissions, drain
    /// every ring and held-back record into the engine, broadcast the
    /// final events, write the checkpoint, then stop all threads.
    /// Subscribers receive the drained events before their sessions
    /// close because the events are already queued when the stop flag
    /// is set.
    fn initiate_shutdown(&self) -> Result<(), ServerError> {
        if self.control.shutdown_started.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        let result = (|| {
            let mut inner = self.inner.lock().expect("state lock never poisoned");
            inner.drain(&self.hub).map_err(ServerError::Core)?;
            if let Some(path) = &self.control.checkpoint {
                let json = inner.checkpoint_json().expect("drain succeeded, engine present");
                write_atomically(path, json.as_bytes()).map_err(ServerError::Io)?;
                // The checkpoint's watermark covers every frame ever
                // logged (the drain bypasses the WAL but is itself
                // captured by the checkpoint), so the whole log is
                // consumed and its segments can go.
                inner.truncate_consumed_wal();
            }
            Ok(())
        })();
        self.control.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.control.addr);
        result
    }

    /// First half of the top-paths gauge update, run before admission
    /// (which drains the batch): per-record label hashes plus a local
    /// per-label aggregation slot. Fx-hashed — one cheap hash + probe
    /// per record; one owned label copy per distinct label per batch.
    fn prepare_push_gauge(&self, batch: &[(String, u64)], hashes: &mut Vec<u64>) -> PushGauge {
        hashes.clear();
        let mut agg: FxHashMap<u64, (u64, String)> = FxHashMap::default();
        for (path, _) in batch {
            let key = first_segment_hash(path);
            hashes.push(key);
            agg.entry(key).or_insert_with(|| (0, first_segment(path).unwrap_or("").to_string()));
        }
        PushGauge { agg }
    }

    /// Second half: counts only the records the engine actually
    /// **accepted** (late/ahead/refused records must not climb the
    /// hot-path gauge), then folds the batch's totals into the shared
    /// sketch under one lock acquisition.
    fn note_accepted(&self, mut gauge: PushGauge, hashes: &[u64], outcomes: &[Admission]) {
        for (key, outcome) in hashes.iter().zip(outcomes) {
            if *outcome == Admission::Accepted {
                gauge.agg.get_mut(key).expect("every hash was seeded").0 += 1;
            }
        }
        let mut top = self.top.lock().expect("top-paths lock never poisoned");
        for (key, (count, label)) in gauge.agg {
            if count == 0 {
                continue;
            }
            top.sketch.add(key, count);
            top.labels.entry(key).or_insert(label);
        }
        if top.labels.len() > TOP_PATHS_CAPACITY * 8 {
            let keep: HashSet<u64> =
                top.sketch.top(TOP_PATHS_CAPACITY).iter().map(|e| e.key).collect();
            top.labels.retain(|key, _| keep.contains(key));
        }
    }

    /// The `STATS top_paths=` value: the estimated-heaviest labels,
    /// heaviest first.
    fn top_paths_gauge(&self) -> String {
        let top = self.top.lock().expect("top-paths lock never poisoned");
        top.sketch
            .top(TOP_PATHS_REPORTED)
            .iter()
            .map(|e| format!("{}:{}", top.labels.get(&e.key).map_or("?", String::as_str), e.count))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Why admissions are refused right now, for `ERR` replies.
    fn refusal_reason(&self) -> String {
        let inner = self.inner.lock().expect("state lock never poisoned");
        if let Some(why) = inner.fatal() {
            return why.to_string();
        }
        if self.front.is_poisoned() {
            // A shard just failed; the scheduler hasn't surfaced the
            // fatal detail yet but the front-end already refuses.
            return "engine error: a shard failed; server is shutting down".to_string();
        }
        "server is shutting down".to_string()
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send `SHUTDOWN` / a signal) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: JoinHandle<()>,
    scheduler: JoinHandle<()>,
    monitor: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_result: Arc<Mutex<Option<ServerError>>>,
    /// The `/metrics` endpoint, when configured; stopped on join.
    metrics: Option<MetricsServer>,
}

impl Server {
    /// Builds the engine (resuming the configured checkpoint if one
    /// exists), splits it into the live ingest front-end + serialized
    /// back-end, binds the listener and starts the accept, scheduler
    /// and (optionally) signal-monitor threads.
    ///
    /// # Errors
    ///
    /// Fails on an invalid detector configuration, an unloadable
    /// checkpoint, or a bind error.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        // An explicit checkpoint path wins; otherwise a durable data
        // dir supplies its own `checkpoint.json`.
        let checkpoint_path = match (&config.checkpoint, &config.data_dir) {
            (Some(path), _) => Some(path.clone()),
            (None, Some(dir)) => Some(dir.join("checkpoint.json")),
            (None, None) => None,
        };
        let mut ckpt_wal_seq: u64 = 0;
        let resumed = match &checkpoint_path {
            Some(path) if path.exists() => {
                let json = std::fs::read_to_string(path).map_err(ServerError::Io)?;
                let (engine, wal_seq) = load_checkpoint_meta(&json).map_err(ServerError::Core)?;
                ckpt_wal_seq = wal_seq.unwrap_or(0);
                match engine {
                    CheckpointEngine::Sharded(engine) => Some(*engine),
                    CheckpointEngine::Single(_) => {
                        return Err(ServerError::Config(format!(
                            "checkpoint {} holds a single-instance detector; the server \
                             requires a sharded engine",
                            path.display()
                        )));
                    }
                }
            }
            _ => None,
        };
        let was_resumed = resumed.is_some();
        let mut engine = match resumed {
            Some(engine) => engine,
            None => config.builder.clone().build_sharded().map_err(ServerError::Core)?,
        };

        // Open the durable state and split out the WAL entries newer
        // than the checkpoint's watermark: those are the acked
        // admissions and closes a crash lost from memory.
        let mut durable = None;
        let mut replay: Vec<WalEntry> = Vec::new();
        if let Some(dir) = &config.data_dir {
            let wal_dir = dir.join("wal");
            let seg_dir = dir.join("segments");
            std::fs::create_dir_all(&wal_dir).map_err(ServerError::Io)?;
            std::fs::create_dir_all(&seg_dir).map_err(ServerError::Io)?;
            let segments = Arc::new(
                SegmentStore::open(&seg_dir, DEFAULT_SEGMENT_BYTES).map_err(ServerError::Io)?,
            );
            let (wal, recovery) = Wal::open(&wal_dir, config.wal_sync, DEFAULT_WAL_SEGMENT_BYTES)
                .map_err(ServerError::Io)?;
            if recovery.repaired() {
                eprintln!(
                    "tiresias-server: WAL repaired: {} torn byte(s) truncated in {}, {} later \
                     file(s) dropped",
                    recovery.torn_bytes,
                    recovery
                        .corrupt_file
                        .as_deref()
                        .map_or_else(|| "-".to_string(), |p| p.display().to_string()),
                    recovery.dropped_files,
                );
            }
            replay = recovery.entries.into_iter().filter(|e| e.seq() > ckpt_wal_seq).collect();
            // Pre-anchor a FRESH engine at the earliest recovered
            // record's unit. The crashed run anchored at the minimum
            // unit over every admitted record, but the WAL's batch
            // order need not surface that record first (a batch
            // validated against the true anchor can be logged ahead of
            // the batch that set it) — replaying without the anchor
            // could misclassify the earliest records as late.
            if engine.current_unit().is_none() {
                let timeunit = engine.timeunit_secs();
                let anchor = replay
                    .iter()
                    .filter_map(|entry| match entry {
                        WalEntry::Batch { records, .. } => {
                            records.iter().map(|&(_, t)| t / timeunit).min()
                        }
                        WalEntry::Close { .. } => None,
                    })
                    .min();
                if let Some(unit) = anchor {
                    engine.advance_to(unit * timeunit).map_err(ServerError::Core)?;
                }
            }
            durable = Some((Arc::new(wal), segments));
        }

        if config.retain_units.is_some() && durable.is_none() {
            // In-memory retention: the oldest closed units simply drop
            // once over budget. With a data dir the bound is applied
            // *after* the spill hook is attached (below), so no event
            // is ever dropped before it reaches a segment.
            engine.store_mut().set_retention(config.retain_units);
        }
        let wal = durable.as_ref().map(|(wal, _)| Arc::clone(wal));
        let segments_arc = durable.as_ref().map(|(_, seg)| Arc::clone(seg));
        let wal_arc = wal.clone();
        let mut live = if config.telemetry {
            engine.into_live_durable(config.max_ahead_units, wal)
        } else {
            // The bench baseline: zero clock reads on the hot paths.
            engine.into_live_untelemetered(config.max_ahead_units, wal)
        }
        .map_err(ServerError::Core)?;
        live.set_rebalance(config.rebalance);
        let mut recovered_batches = 0u64;
        let mut recovered_units = 0u64;
        if let Some((wal, segments)) = &durable {
            live.set_spill(Arc::clone(segments));
            if config.retain_units.is_some() {
                live.set_retention(config.retain_units).map_err(ServerError::Core)?;
            }
            if !replay.is_empty() {
                let units_before = live.units_processed();
                wal.set_replaying(true);
                let result = replay_wal_entries(
                    &mut live,
                    std::mem::take(&mut replay),
                    &mut recovered_batches,
                );
                wal.set_replaying(false);
                result?;
                recovered_units = live.units_processed().saturating_sub(units_before);
            }
        }

        let listener = TcpListener::bind(&config.addr).map_err(ServerError::Io)?;
        let addr = listener.local_addr().map_err(ServerError::Io)?;

        // Capture the engine's histograms before `Inner` takes the
        // engine (`None` when running untelemetered).
        let engine_telem = live.telemetry();
        let mut inner = Inner::new(live, config.grace);
        if let Some((wal, segments)) = durable {
            inner.set_durability(Durability { wal, segments, recovered_batches, recovered_units });
        }
        if was_resumed || recovered_batches > 0 {
            // Checkpointed and replayed events are history: the hub
            // only broadcasts events from new traffic onward (QUERY
            // and SUBSCRIBE FROM still reach them).
            inner.skip_stored_events();
        }
        let front = inner.handle();
        let reader = inner.reader();
        let hub = Arc::new(Hub::default());
        let slow = match &config.slow_log {
            Some(path) => Some(Arc::new(
                SlowLog::open(path, Duration::from_millis(config.slow_ms))
                    .map_err(ServerError::Io)?,
            )),
            None => None,
        };
        let proto = ProtoCounters::default();
        let telem = telemetry::build(
            engine_telem.as_ref(),
            &front,
            &reader,
            &hub,
            wal_arc.as_ref(),
            segments_arc.as_ref(),
            slow,
            &proto,
        );
        inner.set_telemetry(telem.clone());
        let metrics = match &config.metrics_addr {
            Some(addr) => Some(
                MetricsServer::start(addr, Arc::clone(&telem.registry)).map_err(ServerError::Io)?,
            ),
            None => None,
        };
        let shared = Arc::new(Shared {
            front,
            reader,
            inner: Mutex::new(inner),
            hub,
            telem,
            top: Mutex::new(TopPaths::new()),
            control: Control {
                stop: AtomicBool::new(false),
                shutdown_started: AtomicBool::new(false),
                addr,
                checkpoint: checkpoint_path,
            },
            queue_bound: config.subscriber_queue,
            batch_cap: config.flush_records.max(1),
            idle_timeout: config.idle_timeout,
            reaped_sessions: AtomicU64::new(0),
            proto,
        });
        let shutdown_result: Arc<Mutex<Option<ServerError>>> = Arc::new(Mutex::new(None));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            let shutdown_result = Arc::clone(&shutdown_result);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.control.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let shutdown_result = Arc::clone(&shutdown_result);
                    let handle = std::thread::spawn(move || {
                        run_session(stream, &shared, &shutdown_result);
                    });
                    // Only append here: finished sessions are reaped by
                    // the scheduler thread's periodic sweep, so a burst
                    // of connects never stalls behind joins.
                    sessions.lock().expect("session list lock never poisoned").push(handle);
                }
            })
        };

        let scheduler = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            let shutdown_result = Arc::clone(&shutdown_result);
            let tick = config.tick;
            std::thread::spawn(move || {
                let mut last_sweep = Instant::now();
                while !shared.control.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    let result = {
                        let mut inner = shared.inner.lock().expect("state lock never poisoned");
                        inner.tick(Instant::now(), &shared.hub)
                    };
                    if let Err(why) = result {
                        // A fatal engine error: stop serving errors
                        // forever and shut down gracefully instead —
                        // the checkpoint keeps the last good state.
                        eprintln!("tiresias-server: fatal: {why}; shutting down");
                        record_shutdown(&shared, &shutdown_result);
                        break;
                    }
                    if last_sweep.elapsed() >= SESSION_SWEEP {
                        last_sweep = Instant::now();
                        reap_finished_sessions(&sessions);
                    }
                }
            })
        };

        let monitor = if config.handle_signals {
            signal::install();
            let shared = Arc::clone(&shared);
            let shutdown_result = Arc::clone(&shutdown_result);
            Some(std::thread::spawn(move || {
                while !shared.control.stop.load(Ordering::SeqCst) {
                    if signal::signalled() {
                        record_shutdown(&shared, &shutdown_result);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }))
        } else {
            None
        };

        Ok(Server { shared, addr, accept, scheduler, monitor, sessions, shutdown_result, metrics })
    }

    /// The bound listen address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` address, when the endpoint is configured
    /// (resolves `:0` ephemeral ports).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::local_addr)
    }

    /// Begins a graceful shutdown (drain + checkpoint + stop), as the
    /// `SHUTDOWN` command or a signal would. Idempotent.
    pub fn shutdown(&self) {
        record_shutdown(&self.shared, &self.shutdown_result);
    }

    /// Waits for the daemon to finish. Returns once a `SHUTDOWN`
    /// command, a signal, or [`Server::shutdown`] has completed the
    /// graceful stop and every thread has exited.
    ///
    /// # Errors
    ///
    /// Surfaces a failed drain or checkpoint write.
    pub fn join(self) -> Result<(), ServerError> {
        let _ = self.accept.join();
        let _ = self.scheduler.join();
        if let Some(monitor) = self.monitor {
            let _ = monitor.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.sessions.lock().expect("session list lock never poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(mut metrics) = self.metrics {
            metrics.shutdown();
        }
        match self.shutdown_result.lock().expect("result lock never poisoned").take() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

/// Replays recovered WAL entries through the live engine in log
/// order: batches re-admit through an [`IngestHandle`] (the WAL is in
/// replay mode, so nothing is re-appended) and closes re-run the
/// original watermark flips — reproducing the same unit placement,
/// late/ahead classification and anomalies the crashed run acked.
fn replay_wal_entries(
    live: &mut LiveSharded,
    entries: Vec<WalEntry>,
    recovered_batches: &mut u64,
) -> Result<(), ServerError> {
    let handle = live.handle();
    let mut outcomes: Vec<Admission> = Vec::new();
    for entry in entries {
        match entry {
            WalEntry::Batch { mut records, .. } => {
                handle.admit_batch(&mut records, &mut outcomes).map_err(ServerError::Core)?;
                *recovered_batches += 1;
            }
            WalEntry::Close { target, .. } => {
                live.close_to(target).map_err(ServerError::Core)?;
            }
        }
    }
    Ok(())
}

/// Writes `path` atomically and durably: the bytes go to `<path>.tmp`,
/// are fsynced, renamed over the target, and the parent directory is
/// fsynced so the rename itself survives a crash. A torn `.tmp` left
/// behind by a crash mid-write is simply ignored on the next load —
/// the target name always holds either the complete old file or the
/// complete new one.
fn write_atomically(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

/// Joins every finished session thread without blocking on live ones,
/// off the accept path (a long-lived daemon would otherwise accumulate
/// one handle per connection ever accepted).
pub(crate) fn reap_finished_sessions(sessions: &Mutex<Vec<JoinHandle<()>>>) {
    let finished: Vec<JoinHandle<()>> = {
        let mut sessions = sessions.lock().expect("session list lock never poisoned");
        let mut finished = Vec::new();
        let mut i = 0;
        while i < sessions.len() {
            if sessions[i].is_finished() {
                finished.push(sessions.swap_remove(i));
            } else {
                i += 1;
            }
        }
        finished
    };
    // Join outside the lock: these threads have already returned, so
    // each join is immediate, but the accept loop stays unblocked
    // regardless.
    for handle in finished {
        let _ = handle.join();
    }
}

/// Runs the shutdown and records its error (first one wins) for
/// [`Server::join`].
fn record_shutdown(shared: &Shared, shutdown_result: &Mutex<Option<ServerError>>) {
    if let Err(e) = shared.initiate_shutdown() {
        let mut slot = shutdown_result.lock().expect("result lock never poisoned");
        slot.get_or_insert(e);
    }
}

/// One client session: a reader loop on this thread plus a single
/// writer thread draining the session's outbound queue, so replies and
/// broadcast events never interleave mid-line.
fn run_session(stream: TcpStream, shared: &Shared, shutdown_result: &Mutex<Option<ServerError>>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // Replies and event frames are small; Nagle + delayed ACK would
    // add ~40 ms stalls per interactive round trip.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = sync_channel::<String>(shared.queue_bound);
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        while let Ok(line) = rx.recv() {
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush())
                .is_err()
            {
                break;
            }
        }
    });

    let mut subscription: Option<u64> = None;
    let mut ack = true;
    shared.proto.text_sessions.fetch_add(1, Ordering::Relaxed);
    // The session's v2 label dictionary: per connection, append-only,
    // surviving `END`/`UPGRADE` round trips (see the codec docs).
    let mut v2_state = V2Session::default();
    let mut in_v2 = false;
    // Frames this session's subscriptions failed to receive when
    // lag-dropped from the hub (surfaced as `STATS dropped_events=`).
    let dropped_events = Arc::new(AtomicU64::new(0));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Consecutive `PUSH` lines already sitting in the read buffer are
    // admitted under ONE front-end call (amortising its gate
    // acquisition and ring hand-off). Replies stay per-record and in
    // order: the batch is flushed before any non-`PUSH` reply is
    // produced, so pipelined requests observe everything before them.
    let mut batch: Vec<(String, u64)> = Vec::new();
    let mut outcomes: Vec<Admission> = Vec::new();
    let mut gauge_hashes: Vec<u64> = Vec::new();
    // Idle reaping: any inbound byte (a complete line, or partial-line
    // progress across read timeouts) counts as activity. Subscribed
    // sessions are exempt — their inbound side is legitimately quiet
    // while events stream out.
    let mut last_activity = Instant::now();
    let mut partial_len = 0usize;
    'session: loop {
        if shared.control.stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => loop {
                last_activity = Instant::now();
                partial_len = 0;
                let parsed = parse_request(&line);
                line.clear();
                let step = match parsed {
                    Ok(Some(Request::Push { path, t_secs })) => {
                        batch.push((path, t_secs));
                        if batch.len() >= shared.batch_cap
                            && !flush_push_batch(
                                &mut batch,
                                &mut outcomes,
                                &mut gauge_hashes,
                                shared,
                                &tx,
                                ack,
                            )
                        {
                            break 'session;
                        }
                        None
                    }
                    other => {
                        // Admit buffered pushes FIRST: the request's
                        // side effects (a `STATS` snapshot, an `ack`
                        // flip, a subscription) must observe — and its
                        // reply must follow — everything the client
                        // pipelined before it.
                        if !flush_push_batch(
                            &mut batch,
                            &mut outcomes,
                            &mut gauge_hashes,
                            shared,
                            &tx,
                            ack,
                        ) {
                            break 'session;
                        }
                        Some(handle_request(
                            other,
                            shared,
                            &tx,
                            &mut subscription,
                            &mut ack,
                            &dropped_events,
                        ))
                    }
                };
                if let Some(step) = step {
                    match step {
                        SessionStep::Reply(Some(text)) => {
                            if tx.send(text).is_err() {
                                break 'session;
                            }
                        }
                        SessionStep::Reply(None) => {}
                        SessionStep::Disconnect => break 'session,
                        SessionStep::Close(farewell) => {
                            let _ = tx.send(farewell);
                            break 'session;
                        }
                        SessionStep::Shutdown => {
                            let _ = tx.send("OK shutting down".to_string());
                            record_shutdown(shared, shutdown_result);
                            break 'session;
                        }
                        SessionStep::Upgrade => {
                            if tx.send("OK upgraded".to_string()).is_err() {
                                break 'session;
                            }
                            shared.proto.text_sessions.fetch_sub(1, Ordering::Relaxed);
                            shared.proto.v2_sessions.fetch_add(1, Ordering::Relaxed);
                            in_v2 = true;
                            let mut scratch = PushScratch {
                                batch: &mut batch,
                                outcomes: &mut outcomes,
                                gauge_hashes: &mut gauge_hashes,
                            };
                            let exit = run_v2_frames(
                                &mut reader,
                                shared,
                                &tx,
                                &mut v2_state,
                                &mut scratch,
                                ack,
                                subscription.is_some(),
                            );
                            match exit {
                                V2Exit::BackToText => {
                                    shared.proto.v2_sessions.fetch_sub(1, Ordering::Relaxed);
                                    shared.proto.text_sessions.fetch_add(1, Ordering::Relaxed);
                                    in_v2 = false;
                                    last_activity = Instant::now();
                                    partial_len = 0;
                                }
                                V2Exit::Close => break 'session,
                            }
                        }
                    }
                    break;
                }
                // Keep batching while another complete line is already
                // buffered; otherwise admit what we have and go back to
                // the (possibly blocking) outer read.
                if !reader.buffer().contains(&b'\n') {
                    if !flush_push_batch(
                        &mut batch,
                        &mut outcomes,
                        &mut gauge_hashes,
                        shared,
                        &tx,
                        ack,
                    ) {
                        break 'session;
                    }
                    break;
                }
                if reader.read_line(&mut line).is_err() {
                    break;
                }
            },
            // A timeout may leave a partial line in `line`; keep it and
            // continue appending on the next read.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if line.len() > partial_len {
                    // A partial line grew: the peer is mid-write.
                    partial_len = line.len();
                    last_activity = Instant::now();
                }
                if let Some(limit) = shared.idle_timeout {
                    if subscription.is_none() && last_activity.elapsed() >= limit {
                        shared.reaped_sessions.fetch_add(1, Ordering::Relaxed);
                        break 'session;
                    }
                }
            }
            Err(_) => break,
        }
    }
    if in_v2 {
        shared.proto.v2_sessions.fetch_sub(1, Ordering::Relaxed);
    } else {
        shared.proto.text_sessions.fetch_sub(1, Ordering::Relaxed);
    }
    if let Some(id) = subscription {
        shared.hub.unsubscribe(id);
    }
    drop(tx);
    let _ = writer.join();
}

/// Admits buffered `PUSH`es through the lock-free front-end and sends
/// their per-record replies in order. Returns `false` if the session's
/// outbound queue is gone.
fn flush_push_batch(
    batch: &mut Vec<(String, u64)>,
    outcomes: &mut Vec<Admission>,
    gauge_hashes: &mut Vec<u64>,
    shared: &Shared,
    tx: &SyncSender<String>,
    ack: bool,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    // Captured up front: the teardown failure path inside admit_batch
    // may have drained the batch part-way, but every buffered record
    // still needs exactly one reply.
    let buffered = batch.len();
    let gauge = shared.prepare_push_gauge(batch, gauge_hashes);
    match shared.front.admit_batch(batch, outcomes) {
        Ok(()) => {
            shared.note_accepted(gauge, gauge_hashes, outcomes);
            for outcome in outcomes.drain(..) {
                let reply = match outcome {
                    Admission::Accepted => {
                        if !ack {
                            continue;
                        }
                        "OK".to_string()
                    }
                    Admission::Late => "LATE".to_string(),
                    Admission::TooFarAhead => TOO_FAR_AHEAD.to_string(),
                };
                if tx.send(reply).is_err() {
                    return false;
                }
            }
            true
        }
        Err(tiresias_core::CoreError::WalUnavailable(why)) => {
            // The WAL refused the batch: nothing was admitted or
            // acknowledged, the engine stays live, and admission
            // resumes once the log recovers — tell the producer so it
            // can retry, and always (even under `NOACK`) since like
            // `LATE` this reports dropped records.
            let reply = format!("ERR wal {why}");
            batch.clear();
            (0..buffered).all(|_| tx.send(reply.clone()).is_ok())
        }
        Err(_closed) => {
            // Draining or fatal: every buffered record is refused with
            // the reason.
            let reply = format!("ERR {}", shared.refusal_reason());
            batch.clear();
            (0..buffered).all(|_| tx.send(reply.clone()).is_ok())
        }
    }
}

/// Reply for records beyond the future-unit bound (always sent, even
/// under `NOACK` — like `LATE`, it reports a dropped record).
const TOO_FAR_AHEAD: &str = "ERR record timestamp too far ahead of the open timeunit";

/// A session's v2 decode state: the per-connection label dictionary
/// plus reusable header/payload scratch, all surviving `END`/`UPGRADE`
/// round trips on the same connection.
#[derive(Default)]
struct V2Session {
    dict: Vec<String>,
    hdr: [u8; v2::HEADER_BYTES],
    payload: Vec<u8>,
}

/// The session's push scratch, shared between the text batcher and the
/// v2 frame loop so neither reallocates per flush.
struct PushScratch<'a> {
    batch: &'a mut Vec<(String, u64)>,
    outcomes: &'a mut Vec<Admission>,
    gauge_hashes: &'a mut Vec<u64>,
}

/// Why the v2 frame loop handed control back.
pub(crate) enum V2Exit {
    /// An `END` frame: the inbound stream is text again.
    BackToText,
    /// Disconnect, malformed frame, stop flag, or idle reap — the
    /// session is over.
    Close,
}

/// Outcome of [`read_full`].
enum ReadFull {
    /// The buffer is filled.
    Done,
    /// EOF, a hard read error, the stop flag, or the idle reaper.
    Closed,
}

/// Fills `buf` exactly, riding out the 50 ms poll timeouts the session
/// socket runs under — checking the stop flag and the idle reaper
/// between polls, exactly like the text loop (any byte of progress
/// counts as activity; `reap_exempt` carries the text loop's
/// subscribed-session exemption).
fn read_full(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    shared: &Shared,
    last_activity: &mut Instant,
    reap_exempt: bool,
) -> ReadFull {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.control.stop.load(Ordering::SeqCst) {
            return ReadFull::Closed;
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return ReadFull::Closed,
            Ok(n) => {
                filled += n;
                *last_activity = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if let Some(limit) = shared.idle_timeout {
                    if !reap_exempt && last_activity.elapsed() >= limit {
                        shared.reaped_sessions.fetch_add(1, Ordering::Relaxed);
                        return ReadFull::Closed;
                    }
                }
            }
            Err(_) => return ReadFull::Closed,
        }
    }
    ReadFull::Done
}

/// The binary inbound loop a session runs after `UPGRADE`: reads v2
/// frames, decodes DATA frames straight into the session's push batch
/// (one `admit_batch` call per frame — the per-record reply formatting
/// and per-line parsing of the text path are gone), and answers with
/// one text line per frame. Replies stay text in v2 mode, so broadcast
/// `EVENT` frames keep flowing through the same writer thread.
///
/// Error policy: a frame that fails its header or payload checks gets
/// one `ERR` line and **closes the session** — the client's encoder
/// has already interned any labels the bad frame carried, so skipping
/// it would silently desync the label dictionary; a fresh connection
/// is the resync point. Admission refusals (`ERR frame=<seq> wal …`
/// and engine refusals) are not decode errors: the dictionaries agree,
/// so the session stays open for a retry.
fn run_v2_frames(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
    tx: &SyncSender<String>,
    v2s: &mut V2Session,
    scratch: &mut PushScratch<'_>,
    ack: bool,
    reap_exempt: bool,
) -> V2Exit {
    let mut last_activity = Instant::now();
    loop {
        if let ReadFull::Closed =
            read_full(reader, &mut v2s.hdr, shared, &mut last_activity, reap_exempt)
        {
            return V2Exit::Close;
        }
        let header = match v2::decode_header(&v2s.hdr) {
            Ok(h) => h,
            Err(why) => {
                let _ = tx.send(format!("ERR {why}"));
                return V2Exit::Close;
            }
        };
        shared.proto.v2_frames.fetch_add(1, Ordering::Relaxed);
        match header.kind {
            v2::FrameKind::Ping => {
                // Always answered, even under NOACK — the producer's
                // liveness fence between unacked DATA frames.
                if tx.send(format!("PONG frame={}", header.seq)).is_err() {
                    return V2Exit::Close;
                }
            }
            v2::FrameKind::End => {
                if tx.send("OK text".to_string()).is_err() {
                    return V2Exit::Close;
                }
                return V2Exit::BackToText;
            }
            v2::FrameKind::Data => {
                v2s.payload.resize(header.payload_len as usize, 0);
                if let ReadFull::Closed =
                    read_full(reader, &mut v2s.payload, shared, &mut last_activity, reap_exempt)
                {
                    return V2Exit::Close;
                }
                let decode_started = Instant::now();
                if v2::crc32(&v2s.payload) != header.payload_crc {
                    let _ = tx.send(format!("ERR frame={} payload CRC mismatch", header.seq));
                    return V2Exit::Close;
                }
                let decoded = (|| -> Result<(), String> {
                    let (new_entries, offset) = v2::decode_dict(&v2s.payload, &mut v2s.dict)?;
                    shared.proto.v2_dict_entries.fetch_add(new_entries as u64, Ordering::Relaxed);
                    for item in v2::records(&v2s.payload, offset, v2s.dict.len())? {
                        let (id, t_secs) = item?;
                        scratch.batch.push((v2s.dict[id as usize].clone(), t_secs));
                    }
                    Ok(())
                })();
                shared.telem.v2_decode.record_duration(decode_started.elapsed());
                if let Err(why) = decoded {
                    let _ = tx.send(format!("ERR frame={} {why}", header.seq));
                    return V2Exit::Close;
                }
                if !flush_v2_frame(scratch, shared, tx, ack, header.seq) {
                    return V2Exit::Close;
                }
            }
        }
    }
}

/// Admits one decoded DATA frame through the lock-free front-end and
/// sends its frame-level ack: `OK frame=<seq> n=<accepted> late=<l>
/// ahead=<a>`. Under `NOACK` the ack is suppressed unless late/ahead
/// records were dropped (the same drop-reporting contract as the text
/// path's per-record `LATE`/`ERR`). Returns `false` if the session's
/// outbound queue is gone.
fn flush_v2_frame(
    scratch: &mut PushScratch<'_>,
    shared: &Shared,
    tx: &SyncSender<String>,
    ack: bool,
    seq: u32,
) -> bool {
    if scratch.batch.is_empty() {
        return !ack || tx.send(format!("OK frame={seq} n=0 late=0 ahead=0")).is_ok();
    }
    let gauge = shared.prepare_push_gauge(scratch.batch, scratch.gauge_hashes);
    match shared.front.admit_batch(scratch.batch, scratch.outcomes) {
        Ok(()) => {
            shared.note_accepted(gauge, scratch.gauge_hashes, scratch.outcomes);
            let (mut n, mut late, mut ahead) = (0u64, 0u64, 0u64);
            for outcome in scratch.outcomes.drain(..) {
                match outcome {
                    Admission::Accepted => n += 1,
                    Admission::Late => late += 1,
                    Admission::TooFarAhead => ahead += 1,
                }
            }
            if ack || late + ahead > 0 {
                tx.send(format!("OK frame={seq} n={n} late={late} ahead={ahead}")).is_ok()
            } else {
                true
            }
        }
        Err(tiresias_core::CoreError::WalUnavailable(why)) => {
            // Nothing was admitted; the dictionaries still agree, so
            // the session survives for a retry once the log recovers.
            scratch.batch.clear();
            tx.send(format!("ERR frame={seq} wal {why}")).is_ok()
        }
        Err(_closed) => {
            scratch.batch.clear();
            tx.send(format!("ERR frame={seq} {}", shared.refusal_reason())).is_ok()
        }
    }
}

/// What the reader loop does after one line.
enum SessionStep {
    /// Send the reply (if any) and keep reading.
    Reply(Option<String>),
    /// The session's outbound queue is gone: stop without a farewell.
    Disconnect,
    /// Send the farewell and close the session.
    Close(String),
    /// Acknowledge, start the daemon-wide graceful shutdown, close.
    Shutdown,
    /// Acknowledge `UPGRADE` and switch the inbound stream to binary
    /// [v2 frames](crate::protocol::v2).
    Upgrade,
}

fn handle_request(
    parsed: Result<Option<Request>, String>,
    shared: &Shared,
    tx: &SyncSender<String>,
    subscription: &mut Option<u64>,
    ack: &mut bool,
    dropped_events: &Arc<AtomicU64>,
) -> SessionStep {
    let request = match parsed {
        Ok(Some(request)) => request,
        Ok(None) => return SessionStep::Reply(None),
        Err(why) => return SessionStep::Reply(Some(format!("ERR {why}"))),
    };
    match request {
        Request::Push { .. } => {
            unreachable!("PUSH is routed into the session batch by the caller")
        }
        Request::Subscribe { from } => {
            match subscribe_with_replay(from, shared, tx, subscription, dropped_events) {
                Ok(()) => SessionStep::Reply(None),
                Err(()) => SessionStep::Disconnect,
            }
        }
        Request::Query { from_unit, to_unit, prefix, level, limit } => {
            match answer_query(shared, tx, from_unit, to_unit, prefix, level, limit) {
                Ok(()) => SessionStep::Reply(None),
                Err(()) => SessionStep::Disconnect,
            }
        }
        Request::Stats { json } => {
            let top_paths = if json { String::new() } else { shared.top_paths_gauge() };
            let line = {
                let inner = shared.inner.lock().expect("state lock never poisoned");
                match inner.fatal() {
                    Some(why) => Some(format!("ERR {why}")),
                    None if json => None,
                    None => Some(inner.stats_line(
                        &shared.hub,
                        &top_paths,
                        dropped_events.load(Ordering::Relaxed),
                        shared.reaped_sessions.load(Ordering::Relaxed),
                        &shared.proto,
                    )),
                }
            };
            // The JSON snapshot renders AFTER the state lock drops:
            // registry closures read the report store and the hub,
            // never `inner` (the deadlock-freedom invariant).
            let line = line.unwrap_or_else(|| shared.telem.registry.render_json());
            SessionStep::Reply(Some(line))
        }
        Request::Noack => {
            *ack = false;
            SessionStep::Reply(Some("OK".to_string()))
        }
        Request::Ping => SessionStep::Reply(Some("PONG".to_string())),
        Request::Hello => SessionStep::Reply(Some("OK v2".to_string())),
        Request::Upgrade => SessionStep::Upgrade,
        Request::Quit => SessionStep::Close("BYE".to_string()),
        Request::Shutdown => SessionStep::Shutdown,
    }
}

/// Handles `SUBSCRIBE [FROM <unit>]`: re-registers the session with
/// the hub — reviving a lag-dropped stream — after replaying retained
/// history for a `FROM` catch-up.
///
/// The gap-free splice works in chunks: under the state lock (which
/// serialises all broadcasts) a bounded slice of already-broadcast
/// retained events is copied out; the lock is released while the
/// chunk is written to the session queue (a slow client stalls only
/// its own session thread); and once a chunk comes back empty with
/// the replay caught up to the broadcast cursor, the subscription is
/// registered **under that same lock acquisition** — no event can be
/// broadcast between "replay is complete" and "live frames flow", and
/// none is delivered twice.
///
/// Errs when the session's outbound queue is gone.
fn subscribe_with_replay(
    from: Option<u64>,
    shared: &Shared,
    tx: &SyncSender<String>,
    subscription: &mut Option<u64>,
    dropped_events: &Arc<AtomicU64>,
) -> Result<(), ()> {
    if let Some(old) = subscription.take() {
        shared.hub.unsubscribe(old);
    }
    let Some(from_unit) = from else {
        // Live-only: the advertised resume unit and the hub
        // registration must come from ONE lock acquisition (broadcasts
        // run under the same lock), or a unit could close in between
        // and its events — promised by `from=` — silently miss this
        // subscriber. The floor doubles as a belt-and-braces filter.
        let resume = {
            let inner = shared.inner.lock().expect("state lock never poisoned");
            let resume = inner.resume_unit(None);
            *subscription =
                Some(shared.hub.subscribe(tx.clone(), resume, Arc::clone(dropped_events)));
            resume
        };
        return tx.send(format!("OK subscribed from={resume}")).map_err(drop);
    };
    let resume = {
        let inner = shared.inner.lock().expect("state lock never poisoned");
        inner.resume_unit(Some(from_unit))
    };
    // The reply leads so the client knows its actual resume point —
    // later than requested when older history was already evicted —
    // before the first replayed frame arrives. (The replay cursor is
    // seq-based, so a close between this reply and the replay loop
    // loses nothing.)
    tx.send(format!("OK subscribed from={resume}")).map_err(drop)?;
    let t0 = Instant::now();
    let mut pos = 0u64;
    let mut replayed = 0u64;
    loop {
        let chunk = {
            let inner = shared.inner.lock().expect("state lock never poisoned");
            let (lines, next, done) = inner.replay_chunk(pos, from_unit, REPLAY_CHUNK);
            if done && lines.is_empty() {
                *subscription =
                    Some(shared.hub.subscribe(tx.clone(), from_unit, Arc::clone(dropped_events)));
                None
            } else {
                Some((lines, next))
            }
        };
        let Some((lines, next)) = chunk else {
            let elapsed = t0.elapsed();
            shared.telem.catchup.record_duration(elapsed);
            if let Some(slow) = &shared.telem.slow {
                slow.record(
                    "subscribe_catchup",
                    elapsed,
                    &[("from", Field::from(from_unit)), ("frames", Field::from(replayed))],
                );
            }
            return Ok(());
        };
        pos = next;
        for line in lines {
            replayed += 1;
            tx.send(line).map_err(drop)?;
        }
    }
}

/// Answers a `QUERY` straight off the report reader: `EVENT` frames
/// for the matching events — spilled segment history first, then the
/// retained in-memory tail — then `OK n=<count>`. Never takes the
/// state lock, so queries contend only with the per-close merge —
/// never with admission or each other.
///
/// Errs when the session's outbound queue is gone.
fn answer_query(
    shared: &Shared,
    tx: &SyncSender<String>,
    from_unit: u64,
    to_unit: u64,
    prefix: Option<String>,
    level: Option<usize>,
    limit: Option<usize>,
) -> Result<(), ()> {
    let t0 = Instant::now();
    let prefix: Option<CategoryPath> =
        prefix.map(|p| p.parse().expect("CategoryPath parsing is infallible"));
    let limit = limit.unwrap_or(DEFAULT_QUERY_LIMIT).clamp(1, MAX_QUERY_LIMIT);
    // Matches are cloned out and formatted AFTER the read lock drops:
    // a large reply must not hold the lock against the scheduler's
    // close merge for the formatting duration.
    let events: Vec<AnomalyEvent> =
        match shared.reader.query_merged(from_unit, to_unit, prefix.as_ref(), level, limit) {
            Ok(events) => events,
            Err(why) => return tx.send(format!("ERR {why}")).map_err(drop),
        };
    let count = events.len();
    for event in &events {
        tx.send(crate::protocol::format_event(event)).map_err(drop)?;
    }
    // Record before the final OK is enqueued: a client that scrapes
    // the moment its reply lands must already see this query counted.
    let elapsed = t0.elapsed();
    shared.telem.query.record_duration(elapsed);
    let result = tx.send(format!("OK n={count}")).map_err(drop);
    if let Some(slow) = &shared.telem.slow {
        slow.record(
            "query",
            elapsed,
            &[
                ("from", Field::from(from_unit)),
                ("to", Field::from(to_unit)),
                ("frames", Field::from(count)),
            ],
        );
    }
    result
}
