//! Serving state around the live engine: the wall-clock close
//! scheduler, the drain/checkpoint lifecycle and the `STATS` snapshot.
//!
//! Since the lock-free-admission refactor the `PUSH` hot path does not
//! live here at all: sessions admit records straight through a cloned
//! [`tiresias_core::IngestHandle`] — routing, late/ahead validation
//! against the atomic timeunit watermark and the per-shard ring
//! hand-off all happen in `tiresias-core` without any server lock.
//! The **read path** is lock-light too: `QUERY` sessions and
//! `SUBSCRIBE FROM` replays read the engine's retained
//! [`tiresias_core::ReportStore`] through a [`ReportReader`] — the
//! read side of a read-mostly lock whose write side is taken only for
//! the per-close merge, so queries never stall admission. What remains
//! behind the [`Inner`] mutex is exactly the serialized back-end work:
//! timeunit closes, event broadcasting, `STATS` composition, the
//! shutdown drain and the checkpoint.
//!
//! # How live timeunits close
//!
//! The offline engines close a timeunit when a record of a *later*
//! unit arrives — correct for replays, useless for live traffic where
//! concurrent clients interleave and traffic may simply stop. The
//! scheduler instead closes the engine's open unit (its **watermark**)
//! under two rules, both guarded by a configurable **grace window**
//! for late records:
//!
//! 1. **Data watermark** — a record of a later unit arrived at least
//!    `grace` ago: every unit up to that record's unit closes (the
//!    grace window gives slower clients time to deliver stragglers of
//!    the closing unit). The front-end tracks the newest future unit
//!    and the age of the oldest outstanding future record atomically.
//! 2. **Wall-clock cadence** — the open unit has been open for
//!    `timeunit + grace` of real time: it closes even with no newer
//!    traffic, so silence produces the zero-count units the
//!    forecasters need and anomalies are still reported on time.
//!
//! Each close is one [`LiveSharded::close_to`] epoch flip: admissions
//! stall only for the microseconds the watermark barrier is held, and
//! records admitted before the flip land in their unit exactly (see
//! the `tiresias_core::live` module docs for the barrier argument).
//! The newly final events land in the retained store and are broadcast
//! by **global store sequence**: the broadcast cursor is a sequence
//! number, which is also what lets a `SUBSCRIBE FROM` replay hand over
//! to the live stream with no gap and no duplicate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tiresias_core::{
    save_sharded_checkpoint, save_sharded_checkpoint_with_wal, CoreError, IngestHandle,
    LiveSharded, ReportReader, SegmentStore, ShardedTiresias, Wal,
};
use tiresias_telemetry::{Field, RateMeter};

use crate::hub::Hub;
use crate::protocol::format_event;
use crate::telemetry::ServerTelemetry;

/// The durability attachments of a `--data-dir` deployment: the WAL
/// the live engine appends to, the segment archive retention spills
/// into, and what startup recovery replayed (both zero after a clean
/// restart).
pub(crate) struct Durability {
    pub wal: Arc<Wal>,
    pub segments: Arc<SegmentStore>,
    pub recovered_batches: u64,
    pub recovered_units: u64,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("recovered_batches", &self.recovered_batches)
            .field("recovered_units", &self.recovered_units)
            .finish_non_exhaustive()
    }
}

/// The serialized back-end state, locked as one unit — never touched
/// by the `PUSH` hot path.
#[derive(Debug)]
pub(crate) struct Inner {
    /// The running engine; taken by the shutdown drain.
    live: Option<LiveSharded>,
    /// The reassembled offline engine after the drain (checkpoint
    /// source).
    drained: Option<ShardedTiresias>,
    handle: IngestHandle,
    /// Read handle onto the retained report store (stays valid across
    /// the drain).
    reader: ReportReader,
    timeunit: u64,
    grace: Duration,
    /// Wall-clock instant the current open unit became current.
    open_since: Option<Instant>,
    /// Watermark as of the last tick, to spot the first record (and
    /// any close) and re-anchor `open_since`.
    last_watermark: Option<u64>,
    /// Broadcast cursor: the store sequence number up to which events
    /// were already broadcast.
    event_seq: u64,
    /// A non-recoverable engine error: reported to every client and
    /// surfaced through [`Inner::tick`] so the scheduler initiates the
    /// graceful shutdown (the final checkpoint then keeps the last
    /// good engine state).
    fatal: Option<String>,
    /// WAL + segment archive of a `--data-dir` deployment (`None`
    /// without one).
    durability: Option<Durability>,
    /// Windowed `STATS rps` meter over the monotone admitted total —
    /// a rate since the last `STATS`, not a lifetime average, and
    /// immune to the divide-by-zero / negative-window edge cases of
    /// wall-clock arithmetic.
    rate: RateMeter,
    /// Back-end telemetry hooks (broadcast histogram, slow-op log);
    /// `None` until the server wires its registry in.
    telem: Option<ServerTelemetry>,
}

impl Inner {
    pub fn new(live: LiveSharded, grace: Duration) -> Self {
        let handle = live.handle();
        let reader = live.reader();
        let timeunit = handle.timeunit_secs();
        // A resumed checkpoint has an open unit already; anchor its
        // wall-clock window at construction time.
        let last_watermark = handle.watermark();
        Inner {
            live: Some(live),
            drained: None,
            handle,
            reader,
            timeunit,
            grace,
            open_since: last_watermark.map(|_| Instant::now()),
            last_watermark,
            event_seq: 0,
            fatal: None,
            durability: None,
            rate: RateMeter::new(),
            telem: None,
        }
    }

    /// Attaches the server's telemetry (broadcast timing, slow-op log)
    /// once the registry is assembled.
    pub fn set_telemetry(&mut self, telem: ServerTelemetry) {
        self.telem = Some(telem);
    }

    /// Attaches the durability tier (WAL, segment archive, recovery
    /// counters) so ticks drive the interval fsync policy, `STATS`
    /// reports the gauges and the shutdown checkpoint records the WAL
    /// watermark.
    pub fn set_durability(&mut self, durability: Durability) {
        self.durability = Some(durability);
    }

    /// A front-end handle for a session thread (cheap clone).
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// A read handle onto the retained report store (cheap clone; used
    /// by `QUERY` sessions without ever taking the state lock).
    pub fn reader(&self) -> ReportReader {
        self.reader.clone()
    }

    /// Resuming from a checkpoint: events stored before the restart
    /// were already delivered in the previous incarnation — only
    /// broadcast what this run produces. The retained history stays
    /// queryable and replayable.
    pub fn skip_stored_events(&mut self) {
        self.event_seq = self.reader.with(|s| s.next_seq());
    }

    pub fn fatal(&self) -> Option<&str> {
        self.fatal.as_deref()
    }

    /// Scheduler tick: applies the two close rules from the module
    /// docs. Returns the fatal error so the scheduler can begin the
    /// shutdown.
    pub fn tick(&mut self, now: Instant, hub: &Hub) -> Result<(), String> {
        if let Some(why) = &self.fatal {
            return Err(why.clone());
        }
        if self.live.is_none() {
            return Ok(());
        }
        if self.handle.is_poisoned() {
            // A shard worker hit an engine error and closed admissions
            // itself; don't wait for the next barrier to learn the
            // detail — shut down now so the drain checkpoints the last
            // good state.
            let why = "engine error: a shard failed; draining".to_string();
            self.fatal = Some(why.clone());
            return Err(why);
        }
        if let Some(d) = &self.durability {
            // The interval fsync policy piggybacks on the scheduler
            // tick; `every`/`none` make this a no-op. A WAL failure is
            // NOT fatal: admission pauses (every batch refused with
            // `ERR wal`, nothing acknowledged that the log can't
            // persist) and each tick probes the log with a sync until
            // the disk recovers — a hiccup degrades service instead of
            // ending the daemon.
            if self.handle.is_wal_paused() {
                match d.wal.sync_now() {
                    Ok(()) => {
                        self.handle.set_wal_paused(false);
                        eprintln!("tiresias-server: WAL recovered; admission resumed");
                    }
                    Err(_) => return Ok(()), // still down; keep refusing
                }
            } else {
                let slow = self.telem.as_ref().and_then(|t| t.slow.as_deref());
                let t0 = slow.map(|_| Instant::now());
                if let Err(e) = d.wal.maybe_sync() {
                    eprintln!("tiresias-server: WAL fsync failed: {e}; admission paused");
                    self.handle.count_wal_error();
                    self.handle.set_wal_paused(true);
                    return Ok(());
                }
                if let (Some(slow), Some(t0)) = (slow, t0) {
                    slow.record(
                        "fsync",
                        t0.elapsed(),
                        &[("wal_seq", Field::from(d.wal.last_seq()))],
                    );
                }
            }
        }
        let Some(watermark) = self.handle.watermark() else {
            return Ok(());
        };
        if self.last_watermark != Some(watermark) {
            // First record ever (or a close we didn't anchor yet):
            // start the open unit's wall-clock window.
            self.last_watermark = Some(watermark);
            self.open_since = Some(now);
        }
        // Rule 1: data watermark + grace. The front-end tracks the
        // newest admitted future unit and the arrival age of the
        // oldest one still outstanding.
        if let (Some(target), Some(age)) =
            (self.handle.ahead_max_unit(), self.handle.first_future_age())
        {
            if age >= self.grace {
                self.close_to(target, now, hub)?;
                return Ok(());
            }
        }
        // Rule 2: wall-clock cadence.
        if let Some(since) = self.open_since {
            let window = Duration::from_secs(self.timeunit) + self.grace;
            if now.duration_since(since) >= window {
                self.close_to(watermark + 1, now, hub)?;
            }
        }
        Ok(())
    }

    /// One epoch flip: close through `target`, re-anchor the
    /// wall-clock window and broadcast the newly merged events.
    fn close_to(&mut self, target: u64, now: Instant, hub: &Hub) -> Result<(), String> {
        let from = self.last_watermark;
        let t0 = self.telem.as_ref().map(|_| Instant::now());
        let live = self.live.as_mut().expect("tick checked the engine is live");
        let result = live.close_to(target);
        self.last_watermark = self.handle.watermark();
        self.open_since = Some(now);
        // Merged events (if any) are broadcast even when a shard
        // failed: the healthy shards' anomalies still reached the
        // store.
        self.broadcast_new(hub);
        if let (Some(t0), Some(slow)) = (t0, self.telem.as_ref().and_then(|t| t.slow.as_deref())) {
            slow.record(
                "close",
                t0.elapsed(),
                &[
                    ("target", Field::from(target)),
                    ("from", Field::from(from.unwrap_or(0))),
                    ("events", Field::from(self.event_seq)),
                ],
            );
        }
        match result {
            Ok(_) => Ok(()),
            // The close's WAL frame could not append: the watermark
            // never flipped and admission is now WAL-paused — the
            // close retries on a later tick once the log recovers.
            Err(CoreError::WalUnavailable(_)) => Ok(()),
            Err(e) => Err(self.mark_fatal(&e)),
        }
    }

    /// Broadcasts events the engine finalised since the last call,
    /// advancing the sequence cursor. Events evicted before they could
    /// broadcast (a retention budget smaller than one close sweep)
    /// are skipped; the store's eviction counter accounts for them.
    fn broadcast_new(&mut self, hub: &Hub) {
        let (frames, next_seq) = self.reader.with(|s| {
            let (_skipped, tail) = s.events_from(self.event_seq);
            let frames: Vec<(u64, String)> =
                tail.iter().map(|e| (e.unit, format_event(e))).collect();
            (frames, s.next_seq())
        });
        self.event_seq = next_seq;
        if frames.is_empty() {
            return;
        }
        let t0 = self.telem.as_ref().map(|_| Instant::now());
        hub.broadcast(&frames);
        if let (Some(t0), Some(t)) = (t0, &self.telem) {
            t.broadcast.record_duration(t0.elapsed());
        }
    }

    fn mark_fatal(&mut self, e: &CoreError) -> String {
        let why = format!("engine error: {e}");
        self.fatal = Some(why.clone());
        // Stop acknowledging records the engine may no longer ingest.
        if let Some(live) = self.live.as_mut() {
            live.close_admissions();
        }
        why
    }

    /// The unit a fresh subscription resumes from, for the
    /// `OK subscribed from=<unit>` reply: the requested unit clamped to
    /// the retained horizon, or the next unit to close for a live-only
    /// subscribe.
    pub fn resume_unit(&self, from: Option<u64>) -> u64 {
        match from {
            Some(f) => {
                // With a segment archive the replayable horizon reaches
                // past RAM retention, down to the oldest archived unit.
                let floor = self
                    .reader
                    .archive()
                    .and_then(SegmentStore::first_unit)
                    .unwrap_or_else(|| self.reader.with(|s| s.retained_from()));
                f.max(floor)
            }
            None => self.reader.with(|s| s.last_closed_unit().map_or(0, |u| u + 1)),
        }
    }

    /// Copies up to `max` retained replay frames for a `SUBSCRIBE FROM`
    /// catch-up: events at store sequence `≥ pos` that were already
    /// broadcast (sequence below the broadcast cursor) and belong to
    /// units `≥ from_unit`. Returns the frames, the next cursor
    /// position, and whether the replay has caught up with the live
    /// broadcast horizon — at which point registering with the hub
    /// under the same state lock splices the streams gap-free.
    pub fn replay_chunk(&self, pos: u64, from_unit: u64, max: usize) -> (Vec<String>, u64, bool) {
        // Archive tier first: sequences the RAM store already evicted
        // replay straight from the segment files, then the cursor
        // crosses seamlessly into the RAM path below (the tiers
        // partition the sequence space). Only consulted when the
        // requested unit actually predates RAM retention.
        if let Some(seg) = self.reader.archive() {
            let ram_first = self.reader.with(|s| s.first_seq());
            let ram_retained_from = self.reader.with(|s| s.retained_from());
            if pos < ram_first && pos < seg.next_seq() && from_unit < ram_retained_from {
                match seg.read_from_seq(pos, max) {
                    Ok((start, events)) if !events.is_empty() => {
                        let next = start + events.len() as u64;
                        let lines = events
                            .iter()
                            .filter(|e| e.unit >= from_unit)
                            .map(format_event)
                            .collect();
                        return (lines, next, false);
                    }
                    // Empty or unreadable archive: fall through to the
                    // RAM path, which skips the missing prefix.
                    _ => {}
                }
            }
        }
        self.reader.with(|s| {
            // Skip the non-matching prefix via the store's unit index
            // instead of scanning it — the state lock is held here.
            let pos = pos.max(s.seq_lower_bound(from_unit));
            let (skipped, tail) = s.events_from(pos);
            let mut next = pos + skipped;
            let mut lines = Vec::new();
            for e in tail {
                if next >= self.event_seq || lines.len() >= max {
                    break;
                }
                if e.unit >= from_unit {
                    lines.push(format_event(e));
                }
                next += 1;
            }
            (lines, next, next >= self.event_seq)
        })
    }

    /// Shutdown drain: admission stops (anything accepted after the
    /// final checkpoint would be acknowledged and then silently lost),
    /// every ring and held-back future record is fed — closing exactly
    /// the units the data itself closes, the last unit staying open so
    /// a restarted server resumes mid-unit — the final events are
    /// broadcast, and the engine reassembles into its offline form for
    /// the checkpoint. The report store stays readable: `QUERY` keeps
    /// answering from the retained history after the drain.
    pub fn drain(&mut self, hub: &Hub) -> Result<(), CoreError> {
        let Some(live) = self.live.take() else {
            return Ok(());
        };
        match live.finish() {
            Ok(engine) => {
                self.drained = Some(engine);
                self.broadcast_new(hub);
                Ok(())
            }
            Err(e) => {
                self.fatal.get_or_insert(format!("engine error: {e}"));
                Err(e)
            }
        }
    }

    /// Serialises the drained engine into the versioned checkpoint
    /// envelope — stamped with the WAL watermark when durability is on,
    /// so recovery replays only entries the checkpoint doesn't already
    /// contain. `None` before [`Inner::drain`] succeeded.
    pub fn checkpoint_json(&self) -> Option<String> {
        self.drained.as_ref().map(|engine| match &self.durability {
            Some(d) => save_sharded_checkpoint_with_wal(engine, d.wal.last_seq()),
            None => save_sharded_checkpoint(engine),
        })
    }

    /// After the checkpoint durably landed: drops the WAL segments it
    /// made redundant. Best-effort — a failure leaves extra (harmless)
    /// replay work for the next start.
    pub fn truncate_consumed_wal(&self) {
        if let Some(d) = &self.durability {
            let _ = d.wal.truncate_consumed(d.wal.last_seq());
        }
    }

    /// One-line `STATS` reply (see the protocol docs). Reads only the
    /// front-end's atomic gauges, the report store's read lock and the
    /// back-end merge cursor — it never stalls admission. `top_paths`
    /// is the server's Space-Saving hot-path gauge, `session_dropped`
    /// the requesting session's lost-event counter, `reaped_sessions`
    /// the server's idle-session reap counter and `proto` the
    /// wire-protocol accounting (live sessions per protocol, v2 frame
    /// and dictionary totals).
    pub fn stats_line(
        &self,
        hub: &Hub,
        top_paths: &str,
        session_dropped: u64,
        reaped_sessions: u64,
        proto: &crate::telemetry::ProtoCounters,
    ) -> String {
        let handle = &self.handle;
        let records = handle.admitted();
        // Windowed rate since the previous STATS, off the monotonic
        // clock — the first call (no window yet) reports 0.
        let rps = self.rate.observe(records);
        let rings = handle.ring_depths();
        let shard_open = handle.shard_open_records();
        let stashed = handle.stashed_records();
        let pending: u64 = rings.iter().sum::<u64>() + stashed.iter().sum::<u64>();
        let joined = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join("|");
        let open_unit = handle.watermark().map_or_else(|| "-".to_string(), |u| u.to_string());
        let units = match (&self.live, &self.drained) {
            (Some(live), _) => live.units_processed(),
            (None, Some(engine)) => engine.units_processed(),
            _ => 0,
        };
        let (events, evicted, retained_units, retain, last_closed) = self.reader.with(|s| {
            (
                s.len(),
                s.evicted_events(),
                s.retained_unit_count(),
                s.retention().map_or_else(|| "-".to_string(), |u| u.to_string()),
                s.last_closed_unit().map_or_else(|| "-".to_string(), |u| u.to_string()),
            )
        });
        // Durability gauges: all-zero without a `--data-dir` (the
        // fields stay present so parsers need no branching).
        let (wal_seq, wal_bytes, wal_fsyncs, segments, segment_units, rec_batches, rec_units) =
            match &self.durability {
                Some(d) => (
                    d.wal.last_seq(),
                    d.wal.bytes(),
                    d.wal.fsyncs(),
                    d.segments.file_count() as u64,
                    d.segments.block_count() as u64,
                    d.recovered_batches,
                    d.recovered_units,
                ),
                None => (0, 0, 0, 0, 0, 0, 0),
            };
        format!(
            "STATS records={} late={} ahead={} rps={:.1} pending={} open_unit={} open_records={} \
             units={} shards={} shard_open={} rings={} events={} events_evicted={} \
             retained_units={} retain={} last_closed={} subscribers={} dropped_slow={} \
             dropped_events={} wal_seq={} wal_bytes={} wal_fsyncs={} wal_errors={} segments={} \
             segment_units={} recovered_batches={} recovered_units={} reaped_sessions={} \
             proto_text={} proto_v2={} v2_frames={} v2_dict_entries={} rebalances={} \
             pinned_labels={} shard_balance={:.3} top_paths={}",
            records,
            handle.late(),
            handle.ahead(),
            rps,
            pending,
            open_unit,
            shard_open.iter().sum::<u64>(),
            units,
            handle.shard_count(),
            joined(&shard_open),
            joined(&rings),
            events,
            evicted,
            retained_units,
            retain,
            last_closed,
            hub.subscriber_count(),
            hub.dropped_slow(),
            session_dropped,
            wal_seq,
            wal_bytes,
            wal_fsyncs,
            handle.wal_errors(),
            segments,
            segment_units,
            rec_batches,
            rec_units,
            reaped_sessions,
            proto.text_sessions.load(std::sync::atomic::Ordering::Relaxed),
            proto.v2_sessions.load(std::sync::atomic::Ordering::Relaxed),
            proto.v2_frames.load(std::sync::atomic::Ordering::Relaxed),
            proto.v2_dict_entries.load(std::sync::atomic::Ordering::Relaxed),
            handle.rebalances(),
            handle.pinned_labels(),
            handle.shard_balance(),
            if top_paths.is_empty() { "-" } else { top_paths },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_core::{Admission, TiresiasBuilder, DEFAULT_MAX_AHEAD_UNITS};

    fn live() -> LiveSharded {
        TiresiasBuilder::new()
            .timeunit_secs(60)
            .window_len(16)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(2)
            .shards(2)
            .build_sharded()
            .unwrap()
            .into_live(DEFAULT_MAX_AHEAD_UNITS)
            .unwrap()
    }

    fn inner(grace_ms: u64) -> Inner {
        Inner::new(live(), Duration::from_millis(grace_ms))
    }

    #[test]
    fn watermark_close_waits_for_grace() {
        let hub = Hub::default();
        let mut s = inner(400);
        let handle = s.handle();
        let t0 = Instant::now();
        assert_eq!(handle.admit("a/x", 0).unwrap(), Admission::Accepted);
        // Unit 1: starts the (real-time) grace timer.
        assert_eq!(handle.admit("b/y", 65).unwrap(), Admission::Accepted);
        // Within the grace window nothing closes.
        s.tick(t0, &hub).unwrap();
        assert_eq!(handle.watermark(), Some(0));
        // After grace, unit 0 closes and unit 1 becomes open; the
        // held-back unit-1 record is fed to its shard.
        std::thread::sleep(Duration::from_millis(500));
        s.tick(Instant::now(), &hub).unwrap();
        assert_eq!(handle.watermark(), Some(1));
        assert_eq!(handle.ahead_max_unit(), None, "unit-1 record released");
        assert_eq!(handle.stashed_records().iter().sum::<u64>(), 0);
        // The close landed in the retained store.
        assert_eq!(s.reader().with(|store| store.last_closed_unit()), Some(0));
    }

    #[test]
    fn wall_clock_cadence_closes_idle_units() {
        let hub = Hub::default();
        let mut s = inner(100);
        let handle = s.handle();
        let t0 = Instant::now();
        handle.admit("a/x", 0).unwrap();
        s.tick(t0, &hub).unwrap(); // anchors open_since
        assert_eq!(handle.watermark(), Some(0));
        // No newer traffic at all: the unit closes after Δ + grace of
        // wall time (timeunit 60 s + 0.1 s grace), simulated through
        // the tick clock.
        s.tick(t0 + Duration::from_millis(60_200), &hub).unwrap();
        assert_eq!(handle.watermark(), Some(1));
    }

    #[test]
    fn late_records_are_dropped_and_counted() {
        let hub = Hub::default();
        let mut s = inner(0);
        let handle = s.handle();
        let t0 = Instant::now();
        handle.admit("a/x", 0).unwrap();
        handle.admit("a/x", 65).unwrap();
        s.tick(t0, &hub).unwrap(); // grace 0: closes unit 0 immediately
        assert_eq!(handle.watermark(), Some(1));
        assert_eq!(handle.admit("a/x", 30).unwrap(), Admission::Late);
        assert_eq!(handle.late(), 1);
        assert!(s.stats_line(&hub, "", 0, 0, &Default::default()).contains("late=1"));
    }

    #[test]
    fn stats_reports_per_shard_gauges_and_read_path_fields() {
        let hub = Hub::default();
        let s = inner(10_000);
        let handle = s.handle();
        handle.admit("a/x", 5).unwrap();
        handle.admit("a/x", 600).unwrap(); // unit 10: stashed ahead
        let stats = s.stats_line(&hub, "a:2", 3, 0, &Default::default());
        assert!(stats.contains("records=2"), "{stats}");
        assert!(stats.contains("shards=2"), "{stats}");
        assert!(stats.contains("shard_open="), "{stats}");
        assert!(stats.contains("rings="), "{stats}");
        assert!(stats.contains("open_unit=0"), "{stats}");
        assert!(stats.contains("subscribers=0"), "{stats}");
        assert!(stats.contains("dropped_slow=0"), "{stats}");
        assert!(stats.contains("dropped_events=3"), "{stats}");
        assert!(stats.contains("top_paths=a:2"), "{stats}");
        assert!(stats.contains("retain=-"), "{stats}");
        assert!(stats.contains("last_closed=-"), "{stats}");
        let depths = stats.split("rings=").nth(1).unwrap().split(' ').next().unwrap();
        assert_eq!(depths.split('|').count(), 2, "one ring depth per shard: {stats}");
    }

    #[test]
    fn stats_rps_is_a_window_rate_not_a_lifetime_average() {
        let hub = Hub::default();
        let s = inner(10_000);
        let handle = s.handle();
        handle.admit("a/x", 5).unwrap();
        let rps = |stats: &str| {
            stats.split("rps=").nth(1).unwrap().split(' ').next().unwrap().parse::<f64>().unwrap()
        };
        // First STATS: no window exists yet — 0.0, never a division by
        // a zero-or-tiny uptime.
        assert_eq!(rps(&s.stats_line(&hub, "", 0, 0, &Default::default())), 0.0);
        // A real window with fresh records reports their rate over it.
        std::thread::sleep(Duration::from_millis(80));
        for i in 0..50 {
            handle.admit("a/x", 6 + i % 3).unwrap();
        }
        let windowed = rps(&s.stats_line(&hub, "", 0, 0, &Default::default()));
        assert!(windowed > 0.0, "fresh records over a real window: {windowed}");
        // An idle window decays to 0 — a lifetime average would not.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(rps(&s.stats_line(&hub, "", 0, 0, &Default::default())), 0.0);
    }

    #[test]
    fn resume_unit_clamps_to_retained_history() {
        let s = inner(10_000);
        assert_eq!(s.resume_unit(None), 0, "nothing closed yet");
        assert_eq!(s.resume_unit(Some(7)), 7, "nothing evicted yet");
    }

    #[test]
    fn drain_stops_admission_and_checkpoints() {
        let hub = Hub::default();
        let mut s = inner(100);
        let handle = s.handle();
        handle.admit("a/x", 0).unwrap();
        assert!(s.checkpoint_json().is_none(), "no checkpoint before the drain");
        s.drain(&hub).unwrap();
        assert!(matches!(handle.admit("a/x", 10), Err(CoreError::Closed)));
        let json = s.checkpoint_json().expect("drained engine serialises");
        assert!(json.starts_with("{\"version\":4,\"kind\":\"sharded\""));
        // STATS and the report reader still answer after the drain.
        assert!(s.stats_line(&hub, "", 0, 0, &Default::default()).starts_with("STATS "));
        let _ = s.reader().with(|store| store.len());
    }

    #[test]
    fn drain_replays_everything_and_keeps_last_unit_open() {
        let hub = Hub::default();
        let mut s = inner(10_000);
        let handle = s.handle();
        let mut outcomes = Vec::new();
        let mut records: Vec<(String, u64)> = Vec::new();
        for u in 0..5u64 {
            for i in 0..8 {
                records.push(("a/x".to_string(), u * 60 + i));
            }
        }
        handle.admit_batch(&mut records, &mut outcomes).unwrap();
        s.drain(&hub).unwrap();
        let engine = s.drained.as_ref().expect("drained engine present");
        assert_eq!(engine.units_processed(), 4, "units 0..3 closed");
        assert_eq!(engine.current_unit(), Some(4), "unit 4 left open");
    }
}
