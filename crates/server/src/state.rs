//! Shared serving state: the sharded engine, the pending-record
//! buffer, the timeunit watermark and the metrics counters.
//!
//! # How live timeunits close
//!
//! The offline engines close a timeunit when a record of a *later*
//! unit arrives — correct for replays, useless for live traffic where
//! concurrent clients interleave and traffic may simply stop. The
//! server instead keeps its own **watermark** (`open_unit`) and closes
//! it under two rules, both guarded by a configurable **grace window**
//! for late records:
//!
//! 1. **Data watermark** — a record of a later unit arrived at least
//!    `grace` ago: every unit up to that record's unit closes (the
//!    grace window gives slower clients time to deliver stragglers of
//!    the closing unit).
//! 2. **Wall-clock cadence** — the open unit has been open for
//!    `timeunit + grace` of real time: it closes even with no newer
//!    traffic, so silence produces the zero-count units the
//!    forecasters need and anomalies are still reported on time.
//!
//! Records whose unit is already closed are **dropped** (counted and
//! answered with `LATE`) — exactly what the offline engines would
//! reject as out-of-order. Records for *future* units are buffered
//! here and only fed to the engine once their unit opens, so a
//! fast-forwarded client cannot force ahead-of-time closes.

use std::time::{Duration, Instant};

use tiresias_core::{save_sharded_checkpoint, CoreError, ShardedTiresias};

use crate::hub::Hub;
use crate::protocol::format_event;

/// Outcome of ingesting one `PUSH`ed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushOutcome {
    /// Buffered (or ingested) into an open or future timeunit.
    Accepted,
    /// The record's timeunit was already closed; dropped and counted.
    Late,
    /// The record's timeunit is further ahead of the open unit than
    /// [`MAX_FUTURE_UNITS`]; dropped and counted. Catches unit
    /// confusion (e.g. millisecond timestamps where seconds belong) —
    /// and without the bound, one absurd timestamp would make the
    /// watermark close loop over astronomically many intermediate
    /// units while holding the state lock.
    TooFarAhead,
}

/// How many timeunits ahead of the open unit a record may be.
pub(crate) const MAX_FUTURE_UNITS: u64 = 1_000;

/// Engine state plus serving bookkeeping, always locked as one unit.
#[derive(Debug)]
pub(crate) struct Inner {
    engine: ShardedTiresias,
    timeunit: u64,
    grace: Duration,
    flush_records: usize,
    /// Accepted records of the *open* unit, in arrival order — feed
    /// ready (records of one unit need no ordering), flushed to the
    /// engine whenever `flush_records` accumulate.
    due: Vec<(String, u64)>,
    /// Accepted records of units *after* the open one, held back until
    /// their unit opens (sorted only when a close releases them, so
    /// the per-record ingest path never scans or sorts this buffer).
    future: Vec<(String, u64)>,
    /// Largest unit present in `future` (`None` when empty).
    future_max: Option<u64>,
    /// The server's open timeunit (watermark). `None` until the first
    /// record.
    open_unit: Option<u64>,
    /// Wall-clock instant the open unit became current.
    open_since: Option<Instant>,
    /// Wall-clock instant the first record of a unit *newer* than the
    /// open one arrived (starts the data-watermark grace timer).
    first_future: Option<Instant>,
    /// Events already broadcast (index into the engine's store).
    event_cursor: usize,
    accepted: u64,
    dropped_late: u64,
    dropped_ahead: u64,
    first_record: Option<Instant>,
    /// Set by the shutdown drain: no further records are admitted
    /// (anything accepted after the final checkpoint would be
    /// acknowledged and then silently lost).
    draining: bool,
    /// A non-recoverable engine error: reported to every client, and
    /// surfaced through [`Inner::tick`] so the scheduler initiates the
    /// graceful shutdown (the final checkpoint then keeps the last
    /// good engine state; no further records are fed).
    fatal: Option<String>,
}

impl Inner {
    pub fn new(engine: ShardedTiresias, grace: Duration, flush_records: usize) -> Self {
        let timeunit = engine.timeunit_secs();
        // A resumed checkpoint has an open unit already; anchor its
        // wall-clock window at construction time.
        let open_unit = engine.current_unit();
        Inner {
            engine,
            timeunit,
            grace,
            flush_records,
            due: Vec::new(),
            future: Vec::new(),
            future_max: None,
            open_unit,
            open_since: open_unit.map(|_| Instant::now()),
            first_future: None,
            event_cursor: 0,
            accepted: 0,
            dropped_late: 0,
            dropped_ahead: 0,
            first_record: None,
            draining: false,
            fatal: None,
        }
    }

    /// Resuming from a checkpoint: events stored before the restart
    /// were already delivered in the previous incarnation — only
    /// broadcast what this run produces.
    pub fn skip_stored_events(&mut self) {
        self.event_cursor = self.engine.anomalies().len();
    }

    pub fn fatal(&self) -> Option<&str> {
        self.fatal.as_deref()
    }

    /// Ingests one record (see the module docs for the late/future
    /// policy).
    ///
    /// The **first record ever** defines the stream's data-time epoch:
    /// its unit becomes the open watermark unchecked, because data
    /// timestamps are abstract (synthetic feeds start at 0, epoch
    /// feeds at ~1.7e9) and there is nothing yet to bound them
    /// against. A first record in the wrong unit scale (e.g.
    /// milliseconds) therefore anchors the watermark wrong and every
    /// later real record replies `LATE`; the [`MAX_FUTURE_UNITS`]
    /// bound catches the same confusion on every record after the
    /// first. Operators fix a mis-anchored server by restarting it
    /// (without the checkpoint).
    pub fn push(
        &mut self,
        path: &str,
        t_secs: u64,
        now: Instant,
        hub: &Hub,
    ) -> Result<PushOutcome, String> {
        if let Some(why) = &self.fatal {
            return Err(why.clone());
        }
        if self.draining {
            return Err("server is shutting down".to_string());
        }
        let unit = t_secs / self.timeunit;
        let open = match self.open_unit {
            Some(open) => open,
            None => {
                // First record ever: its unit becomes the open unit.
                self.open_unit = Some(unit);
                self.open_since = Some(now);
                unit
            }
        };
        if unit < open {
            self.dropped_late += 1;
            return Ok(PushOutcome::Late);
        }
        if unit > open.saturating_add(MAX_FUTURE_UNITS) {
            self.dropped_ahead += 1;
            return Ok(PushOutcome::TooFarAhead);
        }
        self.accepted += 1;
        self.first_record.get_or_insert(now);
        if unit == open {
            self.due.push((path.to_string(), t_secs));
            if self.due.len() >= self.flush_records {
                self.flush_due(hub).map_err(|e| self.mark_fatal(e))?;
            }
        } else {
            self.future.push((path.to_string(), t_secs));
            self.future_max = Some(self.future_max.map_or(unit, |m| m.max(unit)));
            if self.first_future.is_none() {
                self.first_future = Some(now);
            }
        }
        Ok(PushOutcome::Accepted)
    }

    /// Scheduler tick: applies the two close rules from the module
    /// docs. Returns the fatal error (here or from an earlier ingest
    /// flush) so the scheduler can begin the shutdown.
    pub fn tick(&mut self, now: Instant, hub: &Hub) -> Result<(), String> {
        if let Some(why) = &self.fatal {
            return Err(why.clone());
        }
        let Some(open) = self.open_unit else {
            return Ok(());
        };
        // Rule 1: data watermark + grace (`future` only ever holds
        // units newer than the open one).
        if let (Some(target), Some(since)) = (self.future_max, self.first_future) {
            if now.duration_since(since) >= self.grace {
                self.close_through(target, now, hub).map_err(|e| self.mark_fatal(e))?;
                return Ok(());
            }
        }
        // Rule 2: wall-clock cadence.
        if let Some(since) = self.open_since {
            let window = Duration::from_secs(self.timeunit) + self.grace;
            if now.duration_since(since) >= window {
                self.close_one(open, now, hub).map_err(|e| self.mark_fatal(e))?;
            }
        }
        Ok(())
    }

    /// Rule-2 close: exactly one unit ends on wall-clock cadence, via
    /// the engine's explicit clock-driven
    /// [`ShardedTiresias::close_current_unit`]. Held `future` records
    /// of the unit that now opens migrate to the `due` buffer.
    fn close_one(&mut self, open: u64, now: Instant, hub: &Hub) -> Result<(), CoreError> {
        self.flush_due(hub)?;
        // Align the engine if it was never fed (an all-idle unit).
        self.engine.advance_to(open * self.timeunit)?;
        self.engine.close_current_unit()?;
        let new_open = open + 1;
        self.open_unit = Some(new_open);
        self.open_since = Some(now);
        let mut still_future = Vec::new();
        for record in self.future.drain(..) {
            if record.1 / self.timeunit == new_open {
                self.due.push(record);
            } else {
                still_future.push(record);
            }
        }
        self.future = still_future;
        self.future_max = self.future.iter().map(|&(_, t)| t / self.timeunit).max();
        self.first_future = self.future_max.map(|_| now);
        self.broadcast_new(hub);
        Ok(())
    }

    /// Closes every unit below `target_open` and makes `target_open`
    /// the open unit: the `due` buffer is fed first, then the held
    /// `future` records up to and including `target_open` (sorted by
    /// unit — stable, so concurrent clients' interleavings always form
    /// a valid monotone batch), and the engine advances.
    fn close_through(
        &mut self,
        target_open: u64,
        now: Instant,
        hub: &Hub,
    ) -> Result<(), CoreError> {
        self.flush_due(hub)?;
        self.future.sort_by_key(|&(_, t)| t / self.timeunit);
        let cut = self.future.partition_point(|&(_, t)| t / self.timeunit <= target_open);
        if cut > 0 {
            let batch: Vec<(String, u64)> = self.future.drain(..cut).collect();
            self.engine.push_batch(&batch)?;
        }
        self.engine.advance_to(target_open * self.timeunit)?;
        self.open_unit = Some(target_open);
        self.open_since = Some(now);
        self.future_max = self.future.iter().map(|&(_, t)| t / self.timeunit).max();
        self.first_future = self.future_max.map(|_| now);
        self.broadcast_new(hub);
        Ok(())
    }

    /// Feeds the open unit's accumulated records to the engine without
    /// closing anything — the size-triggered flush of the ingest path.
    /// No ordering work is needed: every record is in the open unit.
    fn flush_due(&mut self, hub: &Hub) -> Result<(), CoreError> {
        if !self.due.is_empty() {
            self.engine.push_batch(&self.due)?;
            self.due.clear();
        }
        // Feeding never closes a unit, but keep the broadcast cursor
        // hot anyway (defensive; no events are expected here).
        self.broadcast_new(hub);
        Ok(())
    }

    /// Broadcasts events the engine finalised since the last call.
    fn broadcast_new(&mut self, hub: &Hub) {
        let events = self.engine.anomalies();
        if self.event_cursor < events.len() {
            let lines: Vec<String> = events[self.event_cursor..].iter().map(format_event).collect();
            self.event_cursor = events.len();
            hub.broadcast(&lines);
        }
    }

    fn mark_fatal(&mut self, e: CoreError) -> String {
        let why = format!("engine error: {e}");
        self.fatal = Some(why.clone());
        why
    }

    /// Shutdown drain: feeds *every* buffered record (closing any unit
    /// the data stream itself closes, exactly like an offline replay),
    /// broadcasts the final events, and — crucially — leaves the last
    /// unit open so a restarted server resumes mid-unit from the
    /// checkpoint.
    pub fn drain(&mut self, hub: &Hub) -> Result<(), CoreError> {
        // From here on no new records are admitted: anything accepted
        // after the final checkpoint would be acknowledged, then lost.
        self.draining = true;
        if self.fatal.is_some() {
            // The engine already failed mid-stream; feeding the buffers
            // would fail again. Deliver what was produced and let the
            // checkpoint capture the last good engine state.
            self.broadcast_new(hub);
            return Ok(());
        }
        self.flush_due(hub)?;
        if let Some(max) = self.future_max.take() {
            self.future.sort_by_key(|&(_, t)| t / self.timeunit);
            let batch = std::mem::take(&mut self.future);
            self.engine.push_batch(&batch)?;
            self.open_unit = Some(self.open_unit.map_or(max, |o| o.max(max)));
            self.first_future = None;
        }
        self.broadcast_new(hub);
        Ok(())
    }

    /// Serialises the engine into the versioned checkpoint envelope
    /// (by reference — no engine clone under the state lock).
    pub fn checkpoint_json(&self) -> String {
        save_sharded_checkpoint(&self.engine)
    }

    /// One-line `STATS` reply (see the protocol docs).
    pub fn stats_line(&self, now: Instant, hub: &Hub) -> String {
        let rps = match self.first_record {
            Some(t0) => {
                let secs = now.duration_since(t0).as_secs_f64();
                if secs > 0.0 {
                    self.accepted as f64 / secs
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        // Per-shard queue depth: records the engine holds in its open
        // unit plus buffered records routed to the shard.
        let mut depth: Vec<u64> =
            self.engine.shard_open_records().iter().map(|&c| c as u64).collect();
        for (path, _) in self.due.iter().chain(&self.future) {
            depth[self.engine.router().route(path)] += 1;
        }
        let depth_str = depth.iter().map(u64::to_string).collect::<Vec<_>>().join("|");
        let open_unit = self.open_unit.map_or_else(|| "-".to_string(), |u| u.to_string());
        format!(
            "STATS records={} late={} ahead={} rps={:.1} pending={} open_unit={} open_records={} \
             units={} shards={} depth={} events={} subs={} slow_drops={}",
            self.accepted,
            self.dropped_late,
            self.dropped_ahead,
            rps,
            self.due.len() + self.future.len(),
            open_unit,
            self.engine.open_unit_records() as u64,
            self.engine.units_processed(),
            self.engine.shard_count(),
            depth_str,
            self.engine.anomalies().len(),
            hub.subscriber_count(),
            hub.dropped_slow(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiresias_core::TiresiasBuilder;

    fn engine() -> ShardedTiresias {
        TiresiasBuilder::new()
            .timeunit_secs(60)
            .window_len(16)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(2)
            .shards(2)
            .build_sharded()
            .unwrap()
    }

    fn inner(grace_ms: u64) -> Inner {
        Inner::new(engine(), Duration::from_millis(grace_ms), 1024)
    }

    #[test]
    fn watermark_close_waits_for_grace() {
        let hub = Hub::default();
        let mut s = inner(10_000);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        s.push("b/y", 65, t0, &hub).unwrap(); // unit 1: starts the grace timer
                                              // Within the grace window nothing closes.
        s.tick(t0 + Duration::from_millis(100), &hub).unwrap();
        assert_eq!(s.engine.units_processed(), 0);
        // After grace, unit 0 closes and unit 1 becomes open.
        s.tick(t0 + Duration::from_millis(10_001), &hub).unwrap();
        assert_eq!(s.engine.units_processed(), 1);
        assert_eq!(s.open_unit, Some(1));
        assert!(s.due.is_empty() && s.future.is_empty(), "unit-1 record was fed to the engine");
    }

    #[test]
    fn wall_clock_cadence_closes_idle_units() {
        let hub = Hub::default();
        let mut s = inner(100);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        // No newer traffic at all: the unit closes after Δ + grace of
        // wall time (timeunit 60s + 0.1s grace).
        s.tick(t0 + Duration::from_millis(60_200), &hub).unwrap();
        assert_eq!(s.engine.units_processed(), 1);
        assert_eq!(s.open_unit, Some(1));
    }

    #[test]
    fn late_records_are_dropped_and_counted() {
        let hub = Hub::default();
        let mut s = inner(0);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        s.push("a/x", 65, t0, &hub).unwrap();
        s.tick(t0 + Duration::from_millis(1), &hub).unwrap(); // closes unit 0
        assert_eq!(s.push("a/x", 30, t0, &hub).unwrap(), PushOutcome::Late);
        assert_eq!(s.dropped_late, 1);
        assert!(s.stats_line(t0, &hub).contains("late=1"));
    }

    #[test]
    fn future_records_do_not_advance_the_engine_early() {
        let hub = Hub::default();
        let mut s = Inner::new(engine(), Duration::from_millis(10_000), 2);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        s.push("a/x", 600, t0, &hub).unwrap(); // unit 10, far ahead
                                               // The size threshold (2) triggers on open-unit records only:
                                               // the future record must stay buffered, no unit may close.
        assert_eq!(s.push("a/x", 5, t0, &hub).unwrap(), PushOutcome::Accepted);
        assert_eq!(s.engine.units_processed(), 0);
        assert!(s.due.is_empty(), "open-unit records flushed to the engine");
        assert_eq!(s.future.len(), 1, "future record stays buffered");
        assert_eq!(s.future_max, Some(10));
        assert_eq!(s.engine.current_unit(), Some(0), "engine still at the open unit");
    }

    #[test]
    fn absurdly_future_records_are_rejected_not_buffered() {
        let hub = Hub::default();
        let mut s = inner(100);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        // Milliseconds pasted where seconds belong: ~2.9e7 units ahead.
        let outcome = s.push("a/x", 1_753_600_000_000, t0, &hub).unwrap();
        assert_eq!(outcome, PushOutcome::TooFarAhead);
        assert!(s.future.is_empty(), "not buffered");
        assert_eq!(s.future_max, None, "cannot become a close target");
        assert!(s.stats_line(t0, &hub).contains("ahead=1"));
        // The boundary itself is accepted.
        let edge = (MAX_FUTURE_UNITS) * 60;
        assert_eq!(s.push("a/x", edge, t0, &hub).unwrap(), PushOutcome::Accepted);
    }

    #[test]
    fn wall_cadence_close_migrates_new_open_units_records() {
        let hub = Hub::default();
        let mut s = inner(10_000);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        // A unit-1 record arrives just before the wall deadline, so
        // the data-watermark grace (10 s) has not elapsed when the
        // wall-clock rule fires.
        let late_arrival = t0 + Duration::from_millis(69_900);
        s.push("b/y", 65, late_arrival, &hub).unwrap();
        s.tick(t0 + Duration::from_millis(70_001), &hub).unwrap();
        assert_eq!(s.engine.units_processed(), 1, "unit 0 closed on cadence");
        assert_eq!(s.open_unit, Some(1));
        assert_eq!(s.due.len(), 1, "the unit-1 record migrated to the due buffer");
        assert!(s.future.is_empty() && s.future_max.is_none());
    }

    #[test]
    fn drain_stops_admission() {
        let hub = Hub::default();
        let mut s = inner(100);
        let t0 = Instant::now();
        s.push("a/x", 0, t0, &hub).unwrap();
        s.drain(&hub).unwrap();
        let err = s.push("a/x", 10, t0, &hub).unwrap_err();
        assert!(err.contains("shutting down"), "{err}");
    }

    #[test]
    fn drain_replays_everything_and_keeps_last_unit_open() {
        let hub = Hub::default();
        let mut s = inner(10_000);
        let t0 = Instant::now();
        for u in 0..5u64 {
            for i in 0..8 {
                s.push("a/x", u * 60 + i, t0, &hub).unwrap();
            }
        }
        s.drain(&hub).unwrap();
        assert_eq!(s.engine.units_processed(), 4, "units 0..3 closed");
        assert_eq!(s.engine.current_unit(), Some(4), "unit 4 left open");
        let json = s.checkpoint_json();
        assert!(json.starts_with("{\"version\":2,\"kind\":\"sharded\""));
    }
}
