//! Server-side telemetry assembly: one [`Registry`] per daemon,
//! populated from the engine's hot-path histograms plus derived
//! counters and gauges read straight off state the server already
//! maintains (atomic totals, ring depths, WAL/segment accounting).
//!
//! The registry is rendered on two cold paths — `GET /metrics`
//! (Prometheus text) and `STATS JSON` — by threads that may or may not
//! hold the server's session locks, so **no registered closure may
//! take the scheduler's `inner` mutex**. Closures only read lock-free
//! atomics, the report store's read-mostly lock, or the hub's
//! subscriber list (both of which no render caller ever holds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tiresias_core::{EngineTelemetry, IngestHandle, ReportReader, SegmentStore, Wal};
use tiresias_telemetry::{Histogram, Registry, SlowLog};

use crate::hub::Hub;

/// Wire-protocol accounting shared between the session threads (which
/// bump the atomics) and the registry (whose closures read them):
/// per-protocol live-session gauges plus v2 frame/dictionary totals.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProtoCounters {
    /// Sessions currently speaking the text protocol.
    pub text_sessions: Arc<AtomicU64>,
    /// Sessions currently in binary v2 frame mode.
    pub v2_sessions: Arc<AtomicU64>,
    /// v2 frames decoded (all kinds) since start.
    pub v2_frames: Arc<AtomicU64>,
    /// Dictionary entries interned across all v2 sessions since start.
    pub v2_dict_entries: Arc<AtomicU64>,
}

/// The server's assembled telemetry: the registry both exporters
/// render, the request-path histograms the session threads feed, and
/// the optional slow-op log.
#[derive(Debug, Clone)]
pub(crate) struct ServerTelemetry {
    /// Every exported metric, in registration order.
    pub registry: Arc<Registry>,
    /// `QUERY` end-to-end latency (store read + reply formatting).
    pub query: Arc<Histogram>,
    /// `SUBSCRIBE FROM` catch-up latency (retained-history replay up
    /// to the live splice).
    pub catchup: Arc<Histogram>,
    /// Hub broadcast latency per closed-unit event flush (the lag a
    /// slow subscriber inflicts on the scheduler).
    pub broadcast: Arc<Histogram>,
    /// v2 DATA-frame decode latency (payload bytes to batch records,
    /// admission excluded).
    pub v2_decode: Arc<Histogram>,
    /// Structured NDJSON slow-op log, `None` unless `--slow-log` is
    /// configured.
    pub slow: Option<Arc<SlowLog>>,
}

/// Builds the daemon's registry. `engine` is `None` when the engine
/// runs untelemetered (the bench baseline) — the derived counters and
/// gauges still export, only the hot-path histograms go missing.
#[allow(clippy::too_many_arguments)] // a one-caller assembly function: every arg is one metric source
pub(crate) fn build(
    engine: Option<&EngineTelemetry>,
    front: &IngestHandle,
    reader: &ReportReader,
    hub: &Arc<Hub>,
    wal: Option<&Arc<Wal>>,
    segments: Option<&Arc<SegmentStore>>,
    slow: Option<Arc<SlowLog>>,
    proto: &ProtoCounters,
) -> ServerTelemetry {
    let registry = Arc::new(Registry::new());
    if let Some(t) = engine {
        t.register_into(&registry);
    }
    let query = registry.histogram(
        "tiresias_query_seconds",
        "QUERY request latency over the retained report store.",
        &[],
    );
    let catchup = registry.histogram(
        "tiresias_subscribe_catchup_seconds",
        "SUBSCRIBE FROM catch-up replay latency until the live splice.",
        &[],
    );
    let broadcast = registry.histogram(
        "tiresias_broadcast_seconds",
        "Hub broadcast latency per closed-unit event flush.",
        &[],
    );
    let v2_decode = registry.histogram(
        "tiresias_v2_decode_seconds",
        "v2 DATA-frame decode latency, payload bytes to batch records.",
        &[],
    );

    // Wire-protocol accounting: session threads bump the atomics, the
    // registry only reads them (no lock, per the closure invariant).
    let p = Arc::clone(&proto.text_sessions);
    registry.gauge_fn(
        "tiresias_sessions",
        "Live sessions by wire protocol.",
        &[("proto", "text")],
        move || p.load(Ordering::Relaxed) as f64,
    );
    let p = Arc::clone(&proto.v2_sessions);
    registry.gauge_fn(
        "tiresias_sessions",
        "Live sessions by wire protocol.",
        &[("proto", "v2")],
        move || p.load(Ordering::Relaxed) as f64,
    );
    let p = Arc::clone(&proto.v2_frames);
    registry.counter_fn(
        "tiresias_v2_frames_total",
        "v2 frames decoded, all kinds.",
        &[],
        move || p.load(Ordering::Relaxed),
    );
    let p = Arc::clone(&proto.v2_dict_entries);
    registry.counter_fn(
        "tiresias_v2_dict_entries_total",
        "Label-dictionary entries interned across v2 sessions.",
        &[],
        move || p.load(Ordering::Relaxed),
    );

    // Admission totals: shared atomics the front-end already counts.
    let f = front.clone();
    registry.counter_fn(
        "tiresias_admitted_records_total",
        "Records accepted into the engine.",
        &[],
        move || f.admitted(),
    );
    let f = front.clone();
    registry.counter_fn(
        "tiresias_late_records_total",
        "Records dropped because their timeunit was already closed.",
        &[],
        move || f.late(),
    );
    let f = front.clone();
    registry.counter_fn(
        "tiresias_ahead_records_total",
        "Records dropped as further ahead than the admission bound.",
        &[],
        move || f.ahead(),
    );
    let f = front.clone();
    registry.counter_fn(
        "tiresias_wal_refusals_total",
        "Batches refused because the write-ahead log was unavailable.",
        &[],
        move || f.wal_errors(),
    );
    let f = front.clone();
    registry.gauge_fn(
        "tiresias_watermark_unit",
        "The open (not yet closed) timeunit; -1 until the stream anchors.",
        &[],
        move || f.watermark().map_or(-1.0, |w| w as f64),
    );
    let f = front.clone();
    registry.gauge_fn(
        "tiresias_ring_queued_records",
        "Records queued in the shard rings, summed over shards.",
        &[],
        move || f.ring_depths().iter().sum::<u64>() as f64,
    );
    let f = front.clone();
    registry.gauge_fn(
        "tiresias_open_records",
        "Records counted into the open timeunit, summed over shards.",
        &[],
        move || f.shard_open_records().iter().sum::<u64>() as f64,
    );
    let f = front.clone();
    registry.gauge_fn(
        "tiresias_stashed_records",
        "Future records stashed ahead of the watermark, summed over shards.",
        &[],
        move || f.stashed_records().iter().sum::<u64>() as f64,
    );

    // Skew-adaptive routing: barrier-applied label moves, the live
    // override-table size and the last measured worst/mean shard-load
    // ratio (1.0 = balanced, 0 = not yet measured).
    let f = front.clone();
    registry.counter_fn(
        "tiresias_rebalances_total",
        "Label reassignments applied at epoch barriers.",
        &[],
        move || f.rebalances(),
    );
    let f = front.clone();
    registry.gauge_fn(
        "tiresias_pinned_labels",
        "Labels pinned in the adaptive routing table.",
        &[],
        move || f.pinned_labels() as f64,
    );
    let f = front.clone();
    registry.gauge_fn(
        "tiresias_shard_balance",
        "Worst/mean per-shard load ratio of the last measured epoch.",
        &[],
        move || f.shard_balance(),
    );

    // Report store, behind its read-mostly lock (safe: render callers
    // never hold it).
    let r = reader.clone();
    registry.gauge_fn(
        "tiresias_retained_events",
        "Anomaly events retained in the in-memory report store.",
        &[],
        move || r.with(|s| s.len()) as f64,
    );
    let r = reader.clone();
    registry.counter_fn(
        "tiresias_evicted_events_total",
        "Anomaly events evicted from RAM by the retention budget.",
        &[],
        move || r.with(|s| s.evicted_events()),
    );

    // Subscriber hub.
    let h = Arc::clone(hub);
    registry.gauge_fn("tiresias_subscribers", "Live SUBSCRIBE sessions.", &[], move || {
        h.subscriber_count() as f64
    });
    let h = Arc::clone(hub);
    registry.counter_fn(
        "tiresias_subscriber_dropped_total",
        "Subscribers dropped for lagging behind the broadcast queue.",
        &[],
        move || h.dropped_slow(),
    );

    // Durability tier, when configured.
    if let Some(wal) = wal {
        let w = Arc::clone(wal);
        registry.counter_fn(
            "tiresias_wal_appended_frames_total",
            "Frames appended to the write-ahead log.",
            &[],
            move || w.last_seq(),
        );
        let w = Arc::clone(wal);
        registry.counter_fn(
            "tiresias_wal_fsyncs_total",
            "fsync calls issued by the write-ahead log.",
            &[],
            move || w.fsyncs(),
        );
        let w = Arc::clone(wal);
        registry.gauge_fn(
            "tiresias_wal_bytes",
            "Bytes in the live write-ahead-log segment chain.",
            &[],
            move || w.bytes() as f64,
        );
        let w = Arc::clone(wal);
        registry.gauge_fn(
            "tiresias_wal_segments",
            "Write-ahead-log segment files on disk.",
            &[],
            move || w.segment_count() as f64,
        );
    }
    if let Some(seg) = segments {
        let s = Arc::clone(seg);
        registry.gauge_fn(
            "tiresias_segment_files",
            "Retention-segment files on disk.",
            &[],
            move || s.file_count() as f64,
        );
        let s = Arc::clone(seg);
        registry.gauge_fn(
            "tiresias_segment_blocks",
            "Unit blocks archived across the retention segments.",
            &[],
            move || s.block_count() as f64,
        );
        let s = Arc::clone(seg);
        registry.gauge_fn(
            "tiresias_segment_bytes",
            "Bytes archived across the retention segments.",
            &[],
            move || s.bytes() as f64,
        );
    }

    ServerTelemetry { registry, query, catchup, broadcast, v2_decode, slow }
}
