//! Process-signal hook: converts `SIGTERM`/`SIGINT` into a flag the
//! server's monitor thread polls to begin a graceful shutdown.
//!
//! The rest of the workspace forbids `unsafe`, and this module keeps
//! the exception as small as possible: one libc FFI declaration and
//! two `signal(2)` registrations. The handler itself only performs an
//! atomic store, which is async-signal-safe.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// `true` once a `SIGTERM` or `SIGINT` has been delivered (after
/// [`install`]).
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Test hook: pretend a signal arrived.
#[doc(hidden)]
pub fn raise_for_test() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs the `SIGTERM`/`SIGINT` handlers (idempotent; Unix only —
/// a no-op elsewhere, where only the `SHUTDOWN` command stops the
/// daemon).
#[cfg(unix)]
pub fn install() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        extern "C" {
            /// POSIX `signal(2)`; the return value (the previous
            /// handler) is ignored.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe, and the handler outlives the process.
        unsafe {
            let _ = signal(SIGTERM, on_signal);
            let _ = signal(SIGINT, on_signal);
        }
    });
}

/// Non-Unix fallback: signals are not hooked; use `SHUTDOWN`.
#[cfg(not(unix))]
pub fn install() {}
