//! Scatter-gather assembly: merging per-node `QUERY` replies back into
//! the single-engine order, and aggregating per-node `STATS` gauges.
//!
//! Every node's reply stream is already `(unit, path)`-ordered (the
//! retained store keeps events in that order), and a category path
//! lives on exactly one node, so a stable sort of the concatenated
//! streams by `(unit, path segments)` reproduces precisely the order a
//! single engine over the union of the traffic would have produced —
//! this is what lets the failover harness compare routed output against
//! an offline replay byte for byte.

use std::collections::BTreeMap;

use super::supervisor::frame_unit;

/// Extracts the category path from an `EVENT … path=<p>` frame (the
/// path is the last field and may contain spaces).
fn frame_path(frame: &str) -> &str {
    match frame.rsplit_once(" path=") {
        Some((_, path)) => path,
        None => "",
    }
}

/// Merges per-node `(unit, path)`-ordered frame streams into one
/// `(unit, path)`-ordered stream, truncated to `limit`. The sort key
/// compares paths segment-wise (matching `CategoryPath`'s ordering),
/// not as flat strings — `/` is not the smallest byte, so flat string
/// order would diverge from the store's order on crafted labels.
pub(crate) fn merge_query_frames(per_node: Vec<Vec<String>>, limit: usize) -> Vec<String> {
    let mut decorated: Vec<(u64, Vec<String>, String)> = per_node
        .into_iter()
        .flatten()
        .map(|frame| {
            let unit = frame_unit(&frame).unwrap_or(0);
            let segments = frame_path(&frame).split('/').map(str::to_string).collect();
            (unit, segments, frame)
        })
        .collect();
    decorated.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    decorated.truncate(limit);
    decorated.into_iter().map(|(_, _, frame)| frame).collect()
}

/// Node gauges that sum meaningfully across the fleet. Order is the
/// output order of the aggregated `STATS` line.
const SUMMED_KEYS: &[&str] = &[
    "records",
    "late",
    "ahead",
    "pending",
    "open_records",
    "events",
    "events_evicted",
    "retained_units",
    "subscribers",
    "dropped_slow",
    "dropped_events",
    "wal_errors",
    "reaped_sessions",
];

/// Aggregates per-node `STATS` replies (absent for unreachable nodes)
/// with the router's own counters into one `STATS` line:
/// summed node gauges, then `nodes=`, `node_state=<addr>:<state>|…`,
/// `buffered=`, `replayed=`, `degraded_queries=`.
pub(crate) fn aggregate_stats(
    node_lines: &[Option<String>],
    node_states: &[(String, &'static str)],
    buffered: u64,
    replayed: u64,
    degraded_queries: u64,
) -> String {
    let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
    for line in node_lines.iter().flatten() {
        for field in line.split_whitespace() {
            let Some((key, value)) = field.split_once('=') else {
                continue;
            };
            if SUMMED_KEYS.contains(&key) {
                if let Ok(v) = value.parse::<u64>() {
                    *sums.entry(key).or_insert(0) += v;
                }
            }
        }
    }
    let mut out = String::from("STATS");
    for key in SUMMED_KEYS {
        out.push_str(&format!(" {key}={}", sums.get(key).copied().unwrap_or(0)));
    }
    let states: Vec<String> =
        node_states.iter().map(|(addr, state)| format!("{addr}:{state}")).collect();
    out.push_str(&format!(
        " nodes={} node_state={} buffered={buffered} replayed={replayed} degraded_queries={degraded_queries}",
        node_states.len(),
        states.join("|"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_unit_then_path_segments() {
        let node_a = vec![
            "EVENT unit=1 level=1 path=a/b".to_string(),
            "EVENT unit=2 level=1 path=a".to_string(),
        ];
        let node_b = vec![
            "EVENT unit=1 level=1 path=a.b".to_string(),
            "EVENT unit=2 level=1 path=z".to_string(),
        ];
        let merged = merge_query_frames(vec![node_a, node_b], 10);
        // Segment-wise: ["a","b"] < ["a.b"] because "a" < "a.b",
        // although the flat strings compare the other way.
        assert_eq!(
            merged,
            [
                "EVENT unit=1 level=1 path=a/b",
                "EVENT unit=1 level=1 path=a.b",
                "EVENT unit=2 level=1 path=a",
                "EVENT unit=2 level=1 path=z",
            ]
        );
        assert_eq!(merge_query_frames(vec![vec![]], 5), Vec::<String>::new());
    }

    #[test]
    fn merge_truncates_to_limit() {
        let frames = vec![
            (1..=5).map(|u| format!("EVENT unit={u} path=a")).collect::<Vec<_>>(),
            (1..=5).map(|u| format!("EVENT unit={u} path=b")).collect::<Vec<_>>(),
        ];
        let merged = merge_query_frames(frames, 3);
        assert_eq!(merged, ["EVENT unit=1 path=a", "EVENT unit=1 path=b", "EVENT unit=2 path=a"]);
    }

    #[test]
    fn stats_sums_gauges_and_reports_router_counters() {
        let lines = [
            Some("STATS records=10 late=1 events=3 open_unit=7 top_paths=a:2".to_string()),
            None,
            Some("STATS records=5 late=0 events=2 wal_errors=1".to_string()),
        ];
        let states = [
            ("127.0.0.1:1001".to_string(), "up"),
            ("127.0.0.1:1002".to_string(), "down"),
            ("127.0.0.1:1003".to_string(), "up"),
        ];
        let line = aggregate_stats(&lines, &states, 4, 9, 2);
        assert!(line.starts_with("STATS records=15 late=1 "), "{line}");
        assert!(line.contains(" events=5 "), "{line}");
        assert!(line.contains(" wal_errors=1 "), "{line}");
        assert!(line.contains(" nodes=3 "), "{line}");
        assert!(
            line.contains(" node_state=127.0.0.1:1001:up|127.0.0.1:1002:down|127.0.0.1:1003:up "),
            "{line}"
        );
        assert!(line.ends_with("buffered=4 replayed=9 degraded_queries=2"), "{line}");
        assert!(!line.contains("open_unit"), "non-summable gauges stay out: {line}");
    }
}
