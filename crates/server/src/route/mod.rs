//! The fault-tolerant routing tier: a thin daemon that
//! consistent-hashes top-level category labels over N downstream
//! `tiresias serve` nodes, speaking the existing newline protocol on
//! both sides.
//!
//! # Routing
//!
//! Label→node assignment reuses the engine's own
//! [`tiresias_core::ShardRouter`] (the `first_segment_hash` +
//! splitmix64 finaliser), so it is total, deterministic across router
//! restarts, and keyed by the *top-level* label only — every record of
//! a category subtree lands on one node, which is what makes per-node
//! detection output equal to a single engine's (the `root_isolation`
//! proof) and per-node `QUERY` streams disjoint.
//!
//! # Failure semantics
//!
//! Each downstream gets a connection supervisor ([`supervisor`]) with
//! per-request timeouts, exponential-backoff + jitter reconnects, and
//! periodic `PING` probes driving an up/degraded/down state machine.
//! While a node is not up, `PUSH` records routed to it park in a
//! bounded per-node outage buffer ([`buffer`]) with their acks
//! *withheld* — the client's reply arrives only when the reconnected
//! node actually answers the replay — and overflow is an explicit
//! `ERR`, so producers always see backpressure, never silent loss.
//! This composes with the node's own WAL: records acked before a node
//! crash reappear from the node's recovery, not from the router, so
//! the router holds no durable state and is itself restartable at the
//! cost of only its (unacked) parked records.
//!
//! `QUERY` scatter-gathers over up nodes with per-node deadlines and
//! merges the `(unit, path)`-ordered streams exactly ([`merge`]);
//! replies from a fleet with unreachable nodes carry a
//! `degraded=<nodes>` tag so partial answers are never mistaken for
//! complete ones. `SUBSCRIBE` fans in per-node event streams through
//! the hub's per-unit frame sequencing. `STATS` aggregates node gauges
//! plus router-level `node_state=` / `buffered=` / `replayed=` /
//! `degraded_queries=` counters.

mod buffer;
mod merge;
mod supervisor;

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tiresias_core::ShardRouter;
use tiresias_telemetry::{MetricsServer, Registry, SlowLog};

use crate::error::ServerError;
use crate::hub::Hub;
use crate::protocol::{parse_request, v2, Request, DEFAULT_QUERY_LIMIT, MAX_QUERY_LIMIT};
use crate::scan::find_newline;
use crate::server::{V2Exit, DEFAULT_SLOW_MS};
use crate::signal;

use buffer::{BatchTicket, Parked};
use merge::{aggregate_stats, merge_query_frames};
use supervisor::{
    is_timeout, run_fanin, run_supervisor, state_name, Conn, Node, NodeTelemetry, RpcError,
    STATE_UP,
};

/// How often blocking session reads time out to re-check the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Pipelined `PUSH` lines admitted per routed sub-batch.
const BATCH_CAP: usize = 256;

/// How often the sweeper joins finished session threads.
const SESSION_SWEEP: Duration = Duration::from_secs(1);

/// Configuration for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Downstream `tiresias serve` addresses, in shard order. The
    /// list's length and order ARE the routing table: restarting the
    /// router with the same list reproduces the same label→node
    /// assignment.
    pub nodes: Vec<String>,
    /// Per-request deadline on downstream connections: connects,
    /// per-reply reads, probe round trips.
    pub request_timeout: Duration,
    /// Interval between `PING` health probes to an up node.
    pub probe_interval: Duration,
    /// Ceiling for the exponential reconnect backoff (jitter adds up to
    /// one extra backoff on top).
    pub backoff_max: Duration,
    /// Per-node outage buffer budget in records; overflow refuses the
    /// batch with an explicit `ERR`.
    pub buffer_records: usize,
    /// Bound of each session's outbound reply/event queue.
    pub queue_bound: usize,
    /// Install `SIGTERM`/`SIGINT` handlers that shut the router down.
    pub handle_signals: bool,
    /// Address for the Prometheus `GET /metrics` listener; `None`
    /// leaves the exporter off (`STATS JSON` still works).
    pub metrics_addr: Option<String>,
    /// Structured NDJSON slow-op log path; `None` disables it.
    pub slow_log: Option<PathBuf>,
    /// Threshold in milliseconds above which an op hits the slow log.
    pub slow_ms: u64,
}

impl RouterConfig {
    /// Defaults: ephemeral listen port, 2 s request deadline, 1 s probe
    /// cadence, 5 s max backoff, 65 536 parked records per node.
    pub fn new(nodes: Vec<String>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            nodes,
            request_timeout: Duration::from_secs(2),
            probe_interval: Duration::from_secs(1),
            backoff_max: Duration::from_secs(5),
            buffer_records: 65_536,
            queue_bound: 1024,
            handle_signals: false,
            metrics_addr: None,
            slow_log: None,
            slow_ms: DEFAULT_SLOW_MS,
        }
    }
}

/// Everything router session threads share.
struct RouterShared {
    nodes: Vec<Arc<Node>>,
    shards: ShardRouter,
    hub: Arc<Hub>,
    stop: Arc<AtomicBool>,
    shutdown_started: AtomicBool,
    addr: SocketAddr,
    /// Every exported router metric; rendered by `STATS JSON` and the
    /// optional `/metrics` listener. Registered closures read node
    /// atomics and buffer depths only — never a session lock.
    registry: Arc<Registry>,
    /// Queries answered while at least one node was unreachable
    /// (shared with a registry closure, hence the `Arc`).
    degraded_queries: Arc<AtomicU64>,
    /// High-water mark: one past the highest unit seen on any fan-in
    /// stream (the `from=` a new subscriber is quoted).
    next_unit: Arc<AtomicU64>,
    queue_bound: usize,
    request_timeout: Duration,
}

impl RouterShared {
    /// Stops the daemon exactly once: flips the stop flag, closes every
    /// outage buffer (resolving parked tickets with an error so no
    /// writer thread waits forever), and unblocks the accept loop.
    fn initiate_shutdown(&self) {
        if self.shutdown_started.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        for node in &self.nodes {
            node.buffer
                .lock()
                .expect("buffer lock never poisoned")
                .close("ERR router shutting down; record not delivered");
        }
        let _ = TcpStream::connect(self.addr);
    }
}

/// The routing daemon. See the [module docs](self) for semantics.
pub struct Router {
    shared: Arc<RouterShared>,
    accept: JoinHandle<()>,
    sweeper: JoinHandle<()>,
    monitor: Option<JoinHandle<()>>,
    supervisors: Vec<JoinHandle<()>>,
    fanins: Vec<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: Option<MetricsServer>,
}

impl Router {
    /// Binds the listener and starts the accept loop plus, per
    /// downstream node, a connection supervisor and a `SUBSCRIBE`
    /// fan-in reader.
    ///
    /// # Errors
    ///
    /// Fails on an empty node list or a bind error. Unreachable nodes
    /// are *not* an error — they start `down` and are adopted by their
    /// supervisor whenever they appear.
    pub fn start(config: RouterConfig) -> Result<Router, ServerError> {
        if config.nodes.is_empty() {
            return Err(ServerError::Config("route needs at least one --node".to_string()));
        }
        let listener = TcpListener::bind(&config.addr).map_err(ServerError::Io)?;
        let addr = listener.local_addr().map_err(ServerError::Io)?;
        let stop = Arc::new(AtomicBool::new(false));
        let hub = Arc::new(Hub::default());
        let next_unit = Arc::new(AtomicU64::new(0));
        let registry = Arc::new(Registry::new());
        let slow = match &config.slow_log {
            Some(path) => Some(Arc::new(
                SlowLog::open(path, Duration::from_millis(config.slow_ms))
                    .map_err(ServerError::Io)?,
            )),
            None => None,
        };
        let nodes: Vec<Arc<Node>> = config
            .nodes
            .iter()
            .map(|addr| {
                let telem = NodeTelemetry::register(&registry, addr, slow.clone());
                Node::new(addr.clone(), config.buffer_records, config.request_timeout, telem)
            })
            .collect();
        let degraded_queries = Arc::new(AtomicU64::new(0));
        register_router_metrics(&registry, &nodes, &hub, &next_unit, &degraded_queries);
        let metrics = match &config.metrics_addr {
            Some(addr) => {
                Some(MetricsServer::start(addr, Arc::clone(&registry)).map_err(ServerError::Io)?)
            }
            None => None,
        };

        let supervisors: Vec<JoinHandle<()>> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let node = Arc::clone(node);
                let stop = Arc::clone(&stop);
                let probe = config.probe_interval;
                let backoff_max = config.backoff_max;
                std::thread::spawn(move || {
                    run_supervisor(node, stop, probe, backoff_max, 0x9e37 + i as u64 * 2)
                })
            })
            .collect();
        let fanins: Vec<JoinHandle<()>> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let addr = node.addr.clone();
                let stop = Arc::clone(&stop);
                let hub = Arc::clone(&hub);
                let next_unit = Arc::clone(&next_unit);
                let timeout = config.request_timeout;
                let backoff_max = config.backoff_max;
                std::thread::spawn(move || {
                    run_fanin(
                        addr,
                        stop,
                        hub,
                        next_unit,
                        timeout,
                        backoff_max,
                        0xc2b2 + i as u64 * 2,
                    )
                })
            })
            .collect();

        let shared = Arc::new(RouterShared {
            shards: ShardRouter::new(nodes.len()),
            nodes,
            hub,
            stop: Arc::clone(&stop),
            shutdown_started: AtomicBool::new(false),
            addr,
            registry,
            degraded_queries,
            next_unit,
            queue_bound: config.queue_bound,
            request_timeout: config.request_timeout,
        });

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || run_router_session(stream, &shared));
                    sessions.lock().expect("session list lock never poisoned").push(handle);
                }
            })
        };
        let sweeper = {
            let stop = Arc::clone(&stop);
            let sessions = Arc::clone(&sessions);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    supervisor::sleep_interruptible(SESSION_SWEEP, &stop);
                    crate::server::reap_finished_sessions(&sessions);
                }
            })
        };
        let monitor = if config.handle_signals {
            signal::install();
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    if signal::signalled() {
                        shared.initiate_shutdown();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }))
        } else {
            None
        };

        Ok(Router { shared, accept, sweeper, monitor, supervisors, fanins, sessions, metrics })
    }

    /// The bound listen address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound `/metrics` listen address, when the exporter is on.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::local_addr)
    }

    /// Begins shutdown, as the `SHUTDOWN` command or a signal would.
    /// Idempotent. Downstream nodes are NOT shut down — they are
    /// independent daemons.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Waits for the daemon to finish (a `SHUTDOWN` command, a signal,
    /// or [`Router::shutdown`]) and joins every thread.
    pub fn join(self) {
        let _ = self.accept.join();
        let _ = self.sweeper.join();
        if let Some(monitor) = self.monitor {
            let _ = monitor.join();
        }
        for handle in self.supervisors.into_iter().chain(self.fanins) {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.sessions.lock().expect("session list lock never poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        // Last: the exporter outlives the protocol threads, so a final
        // scrape during drain still answers.
        if let Some(mut metrics) = self.metrics {
            metrics.shutdown();
        }
    }
}

/// Registers the router's derived metrics: per-node health, buffer and
/// replay accounting (labeled `node="<addr>"`), plus the router-level
/// fan-in and degradation counters. Everything reads lock-free atomics
/// or the per-node buffer lock — never a session lock — so rendering
/// can happen from any thread.
fn register_router_metrics(
    registry: &Registry,
    nodes: &[Arc<Node>],
    hub: &Arc<Hub>,
    next_unit: &Arc<AtomicU64>,
    degraded_queries: &Arc<AtomicU64>,
) {
    for node in nodes {
        let labels: &[(&str, &str)] = &[("node", &node.addr)];
        let n = Arc::clone(node);
        registry.gauge_fn(
            "tiresias_node_state",
            "Downstream node health: 2 up, 1 degraded, 0 down.",
            labels,
            move || n.state() as f64,
        );
        let n = Arc::clone(node);
        registry.gauge_fn(
            "tiresias_node_buffered_records",
            "Records currently parked in the node's outage buffer.",
            labels,
            move || n.parked_records() as f64,
        );
        let n = Arc::clone(node);
        registry.counter_fn(
            "tiresias_node_buffered_records_total",
            "Records ever parked in the node's outage buffer.",
            labels,
            move || n.buffered_total.load(Ordering::SeqCst),
        );
        let n = Arc::clone(node);
        registry.counter_fn(
            "tiresias_node_replayed_records_total",
            "Records replayed from the outage buffer after reconnects.",
            labels,
            move || n.replayed.load(Ordering::SeqCst),
        );
    }
    let d = Arc::clone(degraded_queries);
    registry.counter_fn(
        "tiresias_degraded_queries_total",
        "Queries answered while at least one node was unreachable.",
        &[],
        move || d.load(Ordering::SeqCst),
    );
    let h = Arc::clone(hub);
    registry.gauge_fn(
        "tiresias_router_subscribers",
        "Live SUBSCRIBE sessions fanning in through the router.",
        &[],
        move || h.subscriber_count() as f64,
    );
    let h = Arc::clone(hub);
    registry.counter_fn(
        "tiresias_router_subscriber_dropped_total",
        "Router subscribers dropped for lagging behind the fan-in.",
        &[],
        move || h.dropped_slow(),
    );
    let u = Arc::clone(next_unit);
    registry.gauge_fn(
        "tiresias_router_next_unit",
        "One past the highest timeunit seen on any fan-in stream.",
        &[],
        move || u.load(Ordering::SeqCst) as f64,
    );
}

/// What the session writer thread drains: either a ready reply line or
/// a withheld ack that resolves when a parked sub-batch replays.
enum Outbound {
    Line(String),
    Pending { ticket: Arc<BatchTicket>, idx: usize },
}

/// Outcome of routing one per-node sub-batch of `PUSH` lines.
enum SubOutcome {
    /// The node answered: one reply per line, in order.
    Replies(Vec<String>),
    /// The sub-batch parked; replies resolve through the ticket.
    Parked(Arc<BatchTicket>),
    /// The whole sub-batch failed with this reply per line.
    Refused(String),
}

/// A per-session bulk connection for `NOACK` forwarding: the write
/// half stays with the session; a drainer thread forwards the node's
/// unsolicited `LATE`/`ERR` replies into the session's outbound queue.
struct BulkConn {
    write: TcpStream,
    drainer: JoinHandle<()>,
}

impl BulkConn {
    fn open(
        addr: &str,
        timeout: Duration,
        tx: SyncSender<Outbound>,
        stop: Arc<AtomicBool>,
        done: Arc<AtomicBool>,
        v2: bool,
    ) -> std::io::Result<BulkConn> {
        let mut conn = Conn::connect(addr, timeout)?;
        conn.send_line("NOACK")?;
        let ack = conn.read_line()?;
        if ack != "OK" {
            return Err(std::io::Error::other("node refused NOACK"));
        }
        if v2 {
            conn.send_line("UPGRADE")?;
            let ack = conn.read_line()?;
            if ack != "OK upgraded" {
                return Err(std::io::Error::other("node refused UPGRADE"));
            }
        }
        let write = conn.write_half()?;
        let drainer = std::thread::spawn(move || loop {
            match conn.read_line() {
                Ok(line) => {
                    if tx.send(Outbound::Line(line)).is_err() {
                        break;
                    }
                }
                Err(e) if is_timeout(&e) => {
                    if stop.load(Ordering::SeqCst) || done.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break,
            }
        });
        Ok(BulkConn { write, drainer })
    }

    fn close(self) {
        let _ = self.write.shutdown(Shutdown::Both);
        let _ = self.drainer.join();
    }
}

/// One router client session: reader loop on this thread, one writer
/// thread draining [`Outbound`] (blocking on withheld acks in order),
/// plus on demand a hub forwarder (for `SUBSCRIBE`) and per-node bulk
/// connections (for `NOACK`).
fn run_router_session(stream: TcpStream, shared: &RouterShared) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = sync_channel::<Outbound>(shared.queue_bound);
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        while let Ok(item) = rx.recv() {
            let line = match item {
                Outbound::Line(line) => line,
                // A withheld ack: block until the parked sub-batch
                // replays (or shutdown resolves it). Later queue items
                // wait behind it — replies stay in request order.
                Outbound::Pending { ticket, idx } => ticket.wait(idx),
            };
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush())
                .is_err()
            {
                break;
            }
        }
    });

    let done = Arc::new(AtomicBool::new(false));
    let mut ack = true;
    let mut subscription: Option<(u64, JoinHandle<()>)> = None;
    let dropped_events = Arc::new(AtomicU64::new(0));
    let mut bulk: Vec<Option<BulkConn>> = shared.nodes.iter().map(|_| None).collect();
    let mut noack_bufs: Vec<Vec<u8>> = shared.nodes.iter().map(|_| Vec::new()).collect();
    // A large read buffer: the bulk-forwarding path is syscall-bound,
    // and a routed session relays entire feeds, not chatty requests.
    let mut reader = BufReader::with_capacity(128 * 1024, stream);
    let mut line = String::new();
    let mut batch: Vec<(String, u64)> = Vec::new();
    let mut rv2 = RouterV2::new(shared.nodes.len());
    'session: loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // `NOACK` fast drain: one pass per refill routes every
        // complete `PUSH` line straight out of the reader's buffer —
        // no copy into `line`, no `Request`, no per-record allocation —
        // then consumes them in one step and forwards each node's
        // accumulated bytes in one write (so a buffer never outgrows a
        // reader refill between flushes). Anything else (a non-`PUSH`
        // request, a non-canonical or non-UTF-8 line, a line spanning
        // the buffer boundary) falls through to the generic path below.
        if !ack {
            let mut consumed = 0;
            {
                let buf = reader.buffer();
                while let Some(pos) = find_newline(&buf[consumed..]) {
                    if noack_route_push_bytes(
                        &buf[consumed..consumed + pos],
                        shared,
                        &mut noack_bufs,
                    ) {
                        consumed += pos + 1;
                    } else {
                        break;
                    }
                }
            }
            reader.consume(consumed);
            // Forward before blocking on input (and, for a slow line
            // that is about to park or refuse, keep arrival order).
            if !flush_noack_bufs(shared, &mut noack_bufs, &tx, &mut bulk, &done) {
                break 'session;
            }
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => loop {
                // The `NOACK` re-check covers lines the fast drain
                // could not see whole: the one spanning the buffer
                // boundary, and the first after a blocking read.
                if !ack && noack_route_push(&line, shared, &mut noack_bufs) {
                    line.clear();
                } else {
                    let parsed = parse_request(&line);
                    line.clear();
                    match parsed {
                        Ok(Some(Request::Push { path, t_secs })) => {
                            if ack {
                                batch.push((path, t_secs));
                                if batch.len() >= BATCH_CAP
                                    && !flush_routed_batch(&mut batch, shared, &tx)
                                {
                                    break 'session;
                                }
                            } else {
                                // A valid `PUSH` the byte matcher was
                                // too strict for (tabs, signed
                                // timestamp, …): canonicalise and
                                // forward unacked like the rest.
                                let node_idx = shared.shards.route(&path);
                                let canonical = format!("PUSH {path} {t_secs}\n");
                                noack_bufs[node_idx].extend_from_slice(canonical.as_bytes());
                            }
                        }
                        other => {
                            if !flush_routed_batch(&mut batch, shared, &tx)
                                || !flush_noack_bufs(shared, &mut noack_bufs, &tx, &mut bulk, &done)
                            {
                                break 'session;
                            }
                            match other {
                                Ok(None) => {}
                                Ok(Some(Request::Hello)) => {
                                    if tx.send(Outbound::Line("OK v2".to_string())).is_err() {
                                        break 'session;
                                    }
                                }
                                Ok(Some(Request::Upgrade)) => {
                                    if tx.send(Outbound::Line("OK upgraded".to_string())).is_err() {
                                        break 'session;
                                    }
                                    match run_router_v2_frames(
                                        &mut reader,
                                        shared,
                                        &tx,
                                        &mut rv2,
                                        ack,
                                        &done,
                                    ) {
                                        V2Exit::BackToText => {}
                                        V2Exit::Close => break 'session,
                                    }
                                }
                                Ok(Some(request)) => {
                                    if !handle_router_request(
                                        request,
                                        shared,
                                        &tx,
                                        &mut ack,
                                        &mut subscription,
                                        &dropped_events,
                                    ) {
                                        break 'session;
                                    }
                                }
                                Err(why) => {
                                    if tx.send(Outbound::Line(format!("ERR {why}"))).is_err() {
                                        break 'session;
                                    }
                                }
                            }
                        }
                    }
                }
                // In `NOACK` mode, hand remaining buffered lines back
                // to the fast drain instead of looping here.
                if !ack {
                    break;
                }
                if !reader.buffer().contains(&b'\n') {
                    if !flush_routed_batch(&mut batch, shared, &tx)
                        || !flush_noack_bufs(shared, &mut noack_bufs, &tx, &mut bulk, &done)
                    {
                        break 'session;
                    }
                    break;
                }
                if reader.read_line(&mut line).is_err() {
                    break;
                }
            },
            Err(e) if is_timeout(&e) || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Best effort on an abrupt exit; the normal paths flushed already.
    let _ = flush_noack_bufs(shared, &mut noack_bufs, &tx, &mut bulk, &done);
    done.store(true, Ordering::SeqCst);
    if let Some((id, forwarder)) = subscription {
        shared.hub.unsubscribe(id);
        drop(tx);
        let _ = forwarder.join();
    } else {
        drop(tx);
    }
    for conn in bulk.into_iter().flatten() {
        conn.close();
    }
    rv2.close();
    let _ = writer.join();
}

/// Handles one non-`PUSH` request. Returns `false` to end the session.
fn handle_router_request(
    request: Request,
    shared: &RouterShared,
    tx: &SyncSender<Outbound>,
    ack: &mut bool,
    subscription: &mut Option<(u64, JoinHandle<()>)>,
    dropped_events: &Arc<AtomicU64>,
) -> bool {
    let send = |line: String| tx.send(Outbound::Line(line)).is_ok();
    match request {
        Request::Push { .. } => unreachable!("PUSH is batched by the caller"),
        Request::Hello | Request::Upgrade => {
            unreachable!("HELLO/UPGRADE are handled by the session loop")
        }
        Request::Ping => send("PONG".to_string()),
        Request::Quit => {
            let _ = send("BYE".to_string());
            false
        }
        Request::Noack => {
            *ack = false;
            send("OK".to_string())
        }
        Request::Shutdown => {
            let _ = send("OK shutting down".to_string());
            shared.initiate_shutdown();
            false
        }
        Request::Stats { json } => {
            if json {
                // The router's own registry: node health, RTT
                // histograms, buffer depths. Node engine internals
                // live behind each node's own `STATS JSON`.
                send(shared.registry.render_json())
            } else {
                send(routed_stats(shared))
            }
        }
        Request::Subscribe { from: Some(_) } => send(
            "ERR SUBSCRIBE FROM is not supported through the router; \
             connect to a node for catch-up replay"
                .to_string(),
        ),
        Request::Subscribe { from: None } => {
            if subscription.is_some() {
                return send("ERR already subscribed".to_string());
            }
            // Live-only fan-in: frames from every node flow through the
            // router hub; a dedicated forwarder bridges the hub's
            // line queue into this session's Outbound queue.
            let (etx, erx) = sync_channel::<String>(shared.queue_bound);
            let out = tx.clone();
            let forwarder = std::thread::spawn(move || {
                while let Ok(line) = erx.recv() {
                    if out.send(Outbound::Line(line)).is_err() {
                        break;
                    }
                }
            });
            let from = shared.next_unit.load(Ordering::SeqCst);
            let id = shared.hub.subscribe(etx, 0, Arc::clone(dropped_events));
            *subscription = Some((id, forwarder));
            send(format!("OK subscribed from={from}"))
        }
        Request::Query { from_unit, to_unit, prefix, level, limit } => {
            let limit = limit.unwrap_or(DEFAULT_QUERY_LIMIT).clamp(1, MAX_QUERY_LIMIT);
            let mut request_line = format!("QUERY {from_unit} {to_unit}");
            if let Some(prefix) = &prefix {
                request_line.push_str(&format!(" PREFIX {prefix}"));
            }
            if let Some(level) = level {
                request_line.push_str(&format!(" LEVEL {level}"));
            }
            request_line.push_str(&format!(" LIMIT {limit}"));
            let (frames, degraded) = scatter_query(shared, &request_line);
            let merged = merge_query_frames(frames, limit);
            for frame in &merged {
                if !send(frame.clone()) {
                    return false;
                }
            }
            let tail = if degraded.is_empty() {
                format!("OK n={}", merged.len())
            } else {
                shared.degraded_queries.fetch_add(1, Ordering::SeqCst);
                format!("OK n={} degraded={}", merged.len(), degraded.join(","))
            };
            send(tail)
        }
    }
}

/// Scatters one `QUERY` to every up node in parallel (each leg bounded
/// by the per-request deadline) and gathers the per-node frame streams.
/// Nodes that are not up, fail mid-query, or answer `ERR` are reported
/// in the degraded list instead of silently shrinking the answer.
fn scatter_query(shared: &RouterShared, request_line: &str) -> (Vec<Vec<String>>, Vec<String>) {
    let mut frames: Vec<Vec<String>> = Vec::with_capacity(shared.nodes.len());
    let mut degraded: Vec<String> = Vec::new();
    let results: Vec<Result<Vec<String>, ()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shared
            .nodes
            .iter()
            .map(|node| {
                scope.spawn(move || {
                    if node.state() != STATE_UP {
                        return Err(());
                    }
                    match node.exchange_stream(request_line) {
                        Ok((frames, tail)) if tail.starts_with("OK") => Ok(frames),
                        _ => Err(()),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query leg never panics")).collect()
    });
    for (node, result) in shared.nodes.iter().zip(results) {
        match result {
            Ok(node_frames) => frames.push(node_frames),
            Err(()) => degraded.push(node.addr.clone()),
        }
    }
    (frames, degraded)
}

/// Aggregated `STATS`: per-node gauges (scattered in parallel, absent
/// for unreachable nodes) plus the router's own counters.
fn routed_stats(shared: &RouterShared) -> String {
    let lines: Vec<Option<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shared
            .nodes
            .iter()
            .map(|node| {
                scope.spawn(move || {
                    if node.state() != STATE_UP {
                        return None;
                    }
                    node.request_line("STATS").ok()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stats leg never panics")).collect()
    });
    let states: Vec<(String, &'static str)> =
        shared.nodes.iter().map(|n| (n.addr.clone(), state_name(n.state()))).collect();
    let buffered: u64 = shared.nodes.iter().map(|n| n.parked_records() as u64).sum();
    let replayed: u64 = shared.nodes.iter().map(|n| n.replayed.load(Ordering::SeqCst)).sum();
    aggregate_stats(
        &lines,
        &states,
        buffered,
        replayed,
        shared.degraded_queries.load(Ordering::SeqCst),
    )
}

/// Routes the buffered acked `PUSH` batch: partitions by top-level
/// label, exchanges each sub-batch with its node (or parks it), and
/// emits the per-record replies **in the client's original record
/// order** — ready replies as lines, withheld acks as tickets the
/// writer thread blocks on. Returns `false` if the session's outbound
/// queue is gone. (`NOACK` traffic never reaches this batch; it takes
/// the [`noack_route_push`] fast path.)
fn flush_routed_batch(
    batch: &mut Vec<(String, u64)>,
    shared: &RouterShared,
    tx: &SyncSender<Outbound>,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    let node_count = shared.nodes.len();
    let mut per_node: Vec<Vec<String>> = vec![Vec::new(); node_count];
    let mut origin: Vec<(usize, usize)> = Vec::with_capacity(batch.len());
    for (path, t_secs) in batch.drain(..) {
        let node_idx = shared.shards.route(&path);
        origin.push((node_idx, per_node[node_idx].len()));
        per_node[node_idx].push(format!("PUSH {path} {t_secs}"));
    }
    let mut outcomes: Vec<Option<SubOutcome>> = Vec::with_capacity(node_count);
    for (idx, lines) in per_node.into_iter().enumerate() {
        if lines.is_empty() {
            outcomes.push(None);
            continue;
        }
        outcomes.push(Some(route_acked_sub_batch(&shared.nodes[idx], lines)));
    }
    for (node_idx, sub_idx) in origin {
        let outcome = outcomes[node_idx].as_ref().expect("routed above");
        let sent = match outcome {
            SubOutcome::Replies(replies) => {
                tx.send(Outbound::Line(replies[sub_idx].clone())).is_ok()
            }
            SubOutcome::Parked(ticket) => {
                tx.send(Outbound::Pending { ticket: Arc::clone(ticket), idx: sub_idx }).is_ok()
            }
            SubOutcome::Refused(reply) => tx.send(Outbound::Line(reply.clone())).is_ok(),
        };
        if !sent {
            return false;
        }
    }
    true
}

/// The `NOACK` fast path over raw bytes: if `line` (newline already
/// stripped) is a *canonical* `PUSH <path> <ts>` — single-space
/// prefix, no whitespace at the path's edges, pure-digit timestamp —
/// routes it on the borrowed path slice and appends the raw bytes to
/// its node's outgoing buffer. Everything the generic parser would
/// treat differently (leading whitespace, tabs around the split, a
/// `+`-signed or oversized timestamp, a path whose edge byte is
/// non-ASCII and could be Unicode whitespace the parser trims) returns
/// `false` and takes the slow path, so the two paths never disagree on
/// routing or replies. Timestamp *range* checking needs no parse here:
/// ≤ 19 digits always fit `u64`.
fn noack_route_push_bytes(line: &[u8], shared: &RouterShared, bufs: &mut [Vec<u8>]) -> bool {
    let Some(rest) = line.strip_prefix(b"PUSH ") else {
        return false;
    };
    let Some(sep) = rest.iter().rposition(|&b| b == b' ') else {
        return false;
    };
    let (path, ts) = (&rest[..sep], &rest[sep + 1..]);
    let edge_ok = |b: u8| b.is_ascii() && !b.is_ascii_whitespace();
    if path.is_empty()
        || !edge_ok(path[0])
        || !edge_ok(path[path.len() - 1])
        || ts.is_empty()
        || ts.len() > 19
        || !ts.iter().all(u8::is_ascii_digit)
    {
        return false;
    }
    let Ok(path) = std::str::from_utf8(path) else {
        return false;
    };
    let node_idx = shared.shards.route(path);
    bufs[node_idx].extend_from_slice(line);
    bufs[node_idx].push(b'\n');
    true
}

/// The `&str` twin of [`noack_route_push_bytes`] for lines that arrive
/// through `read_line` (buffer-boundary stragglers): same contract,
/// reached rarely enough that it just trims and delegates.
fn noack_route_push(line: &str, shared: &RouterShared, bufs: &mut [Vec<u8>]) -> bool {
    noack_route_push_bytes(line.trim_end_matches(['\r', '\n']).as_bytes(), shared, bufs)
}

/// Flushes every non-empty `NOACK` buffer. Returns `false` when the
/// session's outbound queue is gone.
fn flush_noack_bufs(
    shared: &RouterShared,
    bufs: &mut [Vec<u8>],
    tx: &SyncSender<Outbound>,
    bulk: &mut [Option<BulkConn>],
    done: &Arc<AtomicBool>,
) -> bool {
    for idx in 0..bufs.len() {
        if !flush_noack_buf(shared, idx, bufs, tx, bulk, done) {
            return false;
        }
    }
    true
}

/// Flushes one node's accumulated `NOACK` bytes: a single bulk write
/// over the per-session forwarding connection while the node is up
/// (the node's unsolicited `LATE`/`ERR` replies flow back through the
/// drainer), parking the lines without reply tracking while it is not.
/// A mid-send failure loses the buffer — unacked traffic is
/// fire-and-forget, exactly as against a dying node directly, and
/// re-sending could duplicate the prefix that did arrive. Only buffer
/// overflow answers per-record `ERR`: `NOACK` suppresses `OK`s, not
/// refusals. Returns `false` when the session's outbound queue is gone.
fn flush_noack_buf(
    shared: &RouterShared,
    node_idx: usize,
    bufs: &mut [Vec<u8>],
    tx: &SyncSender<Outbound>,
    bulk: &mut [Option<BulkConn>],
    done: &Arc<AtomicBool>,
) -> bool {
    if bufs[node_idx].is_empty() {
        return true;
    }
    let node = &shared.nodes[node_idx];
    if node.state() == STATE_UP {
        if bulk[node_idx].is_none() {
            bulk[node_idx] = BulkConn::open(
                &node.addr,
                shared.request_timeout,
                tx.clone(),
                Arc::clone(&shared.stop),
                Arc::clone(done),
                false,
            )
            .ok();
        }
        if let Some(conn) = &mut bulk[node_idx] {
            if conn.write.write_all(&bufs[node_idx]).is_err() {
                if let Some(conn) = bulk[node_idx].take() {
                    conn.close();
                }
            }
            bufs[node_idx].clear();
            return true;
        }
    }
    // Fast-path buffers only ever hold validated UTF-8 lines.
    let lines: Vec<String> =
        String::from_utf8_lossy(&bufs[node_idx]).lines().map(str::to_string).collect();
    bufs[node_idx].clear();
    let count = lines.len();
    let parked = {
        let mut buf = node.buffer.lock().expect("buffer lock never poisoned");
        buf.park(Parked { lines, ticket: None })
    };
    if parked {
        node.buffered_total.fetch_add(count as u64, Ordering::SeqCst);
        return true;
    }
    let refusal = format!("ERR node {} down and outage buffer full", node.addr);
    for _ in 0..count {
        if tx.send(Outbound::Line(refusal.clone())).is_err() {
            return false;
        }
    }
    true
}

/// The router session's v2 state: the client-side label dictionary
/// with one route decision per label (computed once, at intern time —
/// cheaper than the text path's route-per-record), per-node scratch,
/// and the per-node forwarding connections with their own encoders.
struct RouterV2 {
    dict: Vec<String>,
    /// Target node per dictionary id, parallel to `dict`.
    node_for: Vec<u32>,
    hdr: [u8; v2::HEADER_BYTES],
    payload: Vec<u8>,
    /// Per-frame record partition, indexed by node.
    per_node: Vec<Vec<(u32, u64)>>,
    conns: Vec<Option<V2NodeConn>>,
}

/// One downstream v2 connection: its own [`v2::FrameEncoder`] — the
/// node-side dictionary is per *connection*, so the encoder's lifetime
/// is tied to the socket and a reconnect starts both afresh, which is
/// what keeps the two sides in sync — plus a frame-sequence counter
/// and the assembled-frame scratch.
struct V2NodeConn {
    enc: v2::FrameEncoder,
    seq: u32,
    out: Vec<u8>,
    transport: V2Transport,
}

/// How a [`V2NodeConn`] talks to its node: fire-and-forget bulk writes
/// with a reply drainer (`NOACK` sessions), or synchronous
/// frame-in/ack-out RPC (acked sessions).
enum V2Transport {
    Bulk(BulkConn),
    Rpc(Conn),
}

impl RouterV2 {
    fn new(nodes: usize) -> RouterV2 {
        RouterV2 {
            dict: Vec::new(),
            node_for: Vec::new(),
            hdr: [0; v2::HEADER_BYTES],
            payload: Vec::new(),
            per_node: (0..nodes).map(|_| Vec::new()).collect(),
            conns: (0..nodes).map(|_| None).collect(),
        }
    }

    fn close(self) {
        for conn in self.conns.into_iter().flatten() {
            if let V2Transport::Bulk(bulk) = conn.transport {
                bulk.close();
            }
        }
    }
}

/// Fills `buf` exactly from the router session socket, riding out the
/// poll timeouts and checking the stop flag between them. `false` on
/// EOF, a hard error, or shutdown.
fn router_read_full(reader: &mut BufReader<TcpStream>, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// The router's binary inbound loop after `UPGRADE`: client v2 frames
/// are decoded once, partitioned per node by dictionary id (the route
/// is computed when a label is first interned, then reused for every
/// record carrying its id), and re-framed per node through each
/// connection's own encoder — records never round-trip through text.
///
/// Same decode-error policy as the server: one `ERR` line, close the
/// session. Delivery semantics per mode are documented on
/// [`forward_v2_frame`].
fn run_router_v2_frames(
    reader: &mut BufReader<TcpStream>,
    shared: &RouterShared,
    tx: &SyncSender<Outbound>,
    rv2: &mut RouterV2,
    ack: bool,
    done: &Arc<AtomicBool>,
) -> V2Exit {
    let send = |line: String| tx.send(Outbound::Line(line)).is_ok();
    loop {
        if !router_read_full(reader, &mut rv2.hdr, &shared.stop) {
            return V2Exit::Close;
        }
        let header = match v2::decode_header(&rv2.hdr) {
            Ok(h) => h,
            Err(why) => {
                let _ = send(format!("ERR {why}"));
                return V2Exit::Close;
            }
        };
        match header.kind {
            v2::FrameKind::Ping => {
                // Frames are forwarded per DATA frame, so nothing is
                // pending router-side when the fence arrives.
                if !send(format!("PONG frame={}", header.seq)) {
                    return V2Exit::Close;
                }
            }
            v2::FrameKind::End => {
                if !send("OK text".to_string()) {
                    return V2Exit::Close;
                }
                return V2Exit::BackToText;
            }
            v2::FrameKind::Data => {
                rv2.payload.resize(header.payload_len as usize, 0);
                if !router_read_full(reader, &mut rv2.payload, &shared.stop) {
                    return V2Exit::Close;
                }
                if v2::crc32(&rv2.payload) != header.payload_crc {
                    let _ = send(format!("ERR frame={} payload CRC mismatch", header.seq));
                    return V2Exit::Close;
                }
                let decoded = (|| -> Result<(), String> {
                    let (new_entries, offset) = v2::decode_dict(&rv2.payload, &mut rv2.dict)?;
                    for label in &rv2.dict[rv2.dict.len() - new_entries..] {
                        rv2.node_for.push(shared.shards.route(label) as u32);
                    }
                    for item in v2::records(&rv2.payload, offset, rv2.dict.len())? {
                        let (id, t_secs) = item?;
                        rv2.per_node[rv2.node_for[id as usize] as usize].push((id, t_secs));
                    }
                    Ok(())
                })();
                if let Err(why) = decoded {
                    for bucket in &mut rv2.per_node {
                        bucket.clear();
                    }
                    let _ = send(format!("ERR frame={} {why}", header.seq));
                    return V2Exit::Close;
                }
                if !forward_v2_frame(shared, tx, rv2, ack, header.seq, done) {
                    return V2Exit::Close;
                }
            }
        }
    }
}

/// Forwards one partitioned client frame, one sub-frame per involved
/// node, and answers the client:
///
/// * **acked**: each sub-frame is a synchronous RPC; the per-node
///   `OK frame=… n=… late=… ahead=…` acks are summed into one client
///   ack. A down node, a failed exchange, or a node-side refusal marks
///   the frame *degraded* — the client gets `ERR frame=<seq>
///   degraded=<addrs> n=… late=… ahead=…` with the counts that did
///   confirm. Degraded records are **not** re-sent (at-most-once: their
///   fate is unknown, and a duplicate admission would skew counts).
/// * **`NOACK`**: sub-frames are fire-and-forget bulk writes; node drop
///   reports flow back through the reply drainer. Records for a down
///   node are parked **as text lines** in its outage buffer — the
///   failover replay path is shared with the text protocol — and only
///   buffer overflow answers per-record `ERR`s.
///
/// Returns `false` when the session's outbound queue is gone.
fn forward_v2_frame(
    shared: &RouterShared,
    tx: &SyncSender<Outbound>,
    rv2: &mut RouterV2,
    ack: bool,
    client_seq: u32,
    done: &Arc<AtomicBool>,
) -> bool {
    let (mut n, mut late, mut ahead) = (0u64, 0u64, 0u64);
    let mut degraded: Vec<&str> = Vec::new();
    for idx in 0..rv2.per_node.len() {
        if rv2.per_node[idx].is_empty() {
            continue;
        }
        let node = &shared.nodes[idx];
        if !ensure_v2_conn(shared, idx, &mut rv2.conns, ack, tx, done) {
            if ack {
                rv2.per_node[idx].clear();
                degraded.push(&node.addr);
            } else if !park_v2_records(&rv2.dict, &mut rv2.per_node[idx], node, tx) {
                return false;
            }
            continue;
        }
        let conn = rv2.conns[idx].as_mut().expect("ensured above");
        for &(id, t_secs) in &rv2.per_node[idx] {
            conn.enc.add(&rv2.dict[id as usize], t_secs);
        }
        rv2.per_node[idx].clear();
        conn.out.clear();
        let sub_seq = conn.seq;
        conn.seq = conn.seq.wrapping_add(1);
        conn.enc.finish(sub_seq, &mut conn.out);
        match &mut conn.transport {
            V2Transport::Bulk(bulk) => {
                // Fire-and-forget, like the text bulk path: a mid-send
                // failure loses the sub-frame (re-sending could
                // duplicate the prefix that arrived) and drops the
                // connection so the next frame reopens cleanly.
                if bulk.write.write_all(&conn.out).is_err() {
                    if let Some(conn) = rv2.conns[idx].take() {
                        if let V2Transport::Bulk(bulk) = conn.transport {
                            bulk.close();
                        }
                    }
                }
            }
            V2Transport::Rpc(rpc) => {
                let reply = rpc
                    .send_bytes(&conn.out)
                    .and_then(|()| rpc.read_line())
                    .ok()
                    .filter(|line| line.starts_with("OK frame="));
                match reply {
                    Some(line) => {
                        n += ack_field(&line, "n=");
                        late += ack_field(&line, "late=");
                        ahead += ack_field(&line, "ahead=");
                    }
                    None => {
                        degraded.push(&node.addr);
                        rv2.conns[idx] = None;
                    }
                }
            }
        }
    }
    if !ack {
        return true;
    }
    let line = if degraded.is_empty() {
        format!("OK frame={client_seq} n={n} late={late} ahead={ahead}")
    } else {
        format!(
            "ERR frame={client_seq} degraded={} n={n} late={late} ahead={ahead}",
            degraded.join(",")
        )
    };
    tx.send(Outbound::Line(line)).is_ok()
}

/// Extracts one `key=<u64>` field from a node's frame ack.
fn ack_field(line: &str, key: &str) -> u64 {
    line.split(' ').find_map(|kv| kv.strip_prefix(key)).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Makes sure `conns[idx]` holds a live v2 connection of the session's
/// current mode, reopening across mode flips (an `END` / `NOACK` /
/// `UPGRADE` round trip) since the node-side dictionary cannot migrate
/// between connections. `false` when the node is down or refuses the
/// handshake.
fn ensure_v2_conn(
    shared: &RouterShared,
    idx: usize,
    conns: &mut [Option<V2NodeConn>],
    ack: bool,
    tx: &SyncSender<Outbound>,
    done: &Arc<AtomicBool>,
) -> bool {
    let mode_matches = match &conns[idx] {
        Some(conn) => matches!(conn.transport, V2Transport::Rpc(_)) == ack,
        None => false,
    };
    if mode_matches {
        return true;
    }
    if let Some(conn) = conns[idx].take() {
        if let V2Transport::Bulk(bulk) = conn.transport {
            bulk.close();
        }
    }
    let node = &shared.nodes[idx];
    if node.state() != STATE_UP {
        return false;
    }
    let transport = if ack {
        let opened = Conn::connect(&node.addr, shared.request_timeout).and_then(|mut conn| {
            conn.send_line("UPGRADE")?;
            if conn.read_line()? != "OK upgraded" {
                return Err(std::io::Error::other("node refused UPGRADE"));
            }
            Ok(conn)
        });
        match opened {
            Ok(conn) => V2Transport::Rpc(conn),
            Err(_) => return false,
        }
    } else {
        match BulkConn::open(
            &node.addr,
            shared.request_timeout,
            tx.clone(),
            Arc::clone(&shared.stop),
            Arc::clone(done),
            true,
        ) {
            Ok(bulk) => V2Transport::Bulk(bulk),
            Err(_) => return false,
        }
    };
    conns[idx] =
        Some(V2NodeConn { enc: v2::FrameEncoder::new(), seq: 0, out: Vec::new(), transport });
    true
}

/// Parks one down node's share of a `NOACK` v2 frame as text lines in
/// its outage buffer (failover replay is shared with the text
/// protocol); overflow answers one `ERR` per record. Returns `false`
/// when the session's outbound queue is gone.
fn park_v2_records(
    dict: &[String],
    records: &mut Vec<(u32, u64)>,
    node: &Node,
    tx: &SyncSender<Outbound>,
) -> bool {
    let lines: Vec<String> =
        records.drain(..).map(|(id, t)| format!("PUSH {} {t}", dict[id as usize])).collect();
    let count = lines.len();
    let parked = {
        let mut buf = node.buffer.lock().expect("buffer lock never poisoned");
        buf.park(Parked { lines, ticket: None })
    };
    if parked {
        node.buffered_total.fetch_add(count as u64, Ordering::SeqCst);
        return true;
    }
    let refusal = format!("ERR node {} down and outage buffer full", node.addr);
    (0..count).all(|_| tx.send(Outbound::Line(refusal.clone())).is_ok())
}

/// Routes one acked sub-batch: RPC while the node is up, park with a
/// reply ticket while it is not, explicit `ERR` on buffer overflow or
/// an unconfirmed in-flight failure (at-most-once: records whose fate
/// the router cannot know are *never* re-sent — a duplicate admission
/// would silently skew the node's counts).
fn route_acked_sub_batch(node: &Node, lines: Vec<String>) -> SubOutcome {
    // One retry when the up/park race flips under us, then refuse.
    for _ in 0..2 {
        if node.state() == STATE_UP {
            match node.push_batch(&lines) {
                Ok(replies) => return SubOutcome::Replies(replies),
                Err(RpcError::Unknown) => {
                    return SubOutcome::Refused(format!(
                        "ERR node {} unavailable; delivery unknown",
                        node.addr
                    ));
                }
                // Nothing was sent: fall through to parking.
                Err(RpcError::NotSent) => {}
            }
        }
        let ticket = BatchTicket::new();
        {
            let mut buf = node.buffer.lock().expect("buffer lock never poisoned");
            if node.state() != STATE_UP {
                let count = lines.len();
                return if buf.park(Parked { lines, ticket: Some(Arc::clone(&ticket)) }) {
                    node.buffered_total.fetch_add(count as u64, Ordering::SeqCst);
                    SubOutcome::Parked(ticket)
                } else {
                    SubOutcome::Refused(format!(
                        "ERR node {} down and outage buffer full",
                        node.addr
                    ))
                };
            }
            // The replay finished while we prepared to park (the up
            // flip happens under this buffer lock): retry the RPC.
        }
    }
    SubOutcome::Refused(format!("ERR node {} flapping; record refused", node.addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Instant;
    use tiresias_core::TiresiasBuilder;

    use crate::server::{Server, ServerConfig};

    fn node_config() -> ServerConfig {
        let builder = TiresiasBuilder::new()
            .timeunit_secs(60)
            .window_len(16)
            .threshold(5.0)
            .season_length(4)
            .sensitivity(2.0, 5.0)
            .warmup_units(2)
            .shards(1);
        let mut config = ServerConfig::new(builder);
        config.grace = Duration::from_millis(100);
        config.tick = Duration::from_millis(20);
        config
    }

    struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { stream, reader }
        }

        fn send(&mut self, line: &str) {
            self.stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    /// Polls routed `STATS` until `predicate` holds (10 s deadline).
    fn wait_for_stats(addr: SocketAddr, predicate: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut client = Client::connect(addr);
            let stats = client.roundtrip("STATS");
            if predicate(&stats) {
                return stats;
            }
            assert!(Instant::now() < deadline, "deadline waiting on STATS; last: {stats}");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Two distinct top-level labels, one routed to each of two nodes.
    fn split_labels() -> (String, String) {
        let shards = ShardRouter::new(2);
        let mut labels = [None, None];
        for i in 0.. {
            let label = format!("label-{i}/leaf");
            let node = shards.route(&label);
            if labels[node].is_none() {
                labels[node] = Some(label);
                if labels.iter().all(Option::is_some) {
                    break;
                }
            }
        }
        (labels[0].take().unwrap(), labels[1].take().unwrap())
    }

    #[test]
    fn router_fans_out_and_degrades_when_a_node_stops() {
        let node_a = Server::start(node_config()).unwrap();
        let node_b = Server::start(node_config()).unwrap();
        let mut config = RouterConfig::new(vec![
            node_a.local_addr().to_string(),
            node_b.local_addr().to_string(),
        ]);
        config.probe_interval = Duration::from_millis(100);
        config.request_timeout = Duration::from_millis(500);
        config.backoff_max = Duration::from_millis(500);
        let router = Router::start(config).unwrap();
        let addr = router.local_addr();

        wait_for_stats(addr, |s| s.matches(":up").count() == 2);
        let (label_a, label_b) = split_labels();

        let mut client = Client::connect(addr);
        assert_eq!(client.roundtrip("PING"), "PONG");
        for t in [0u64, 10, 60, 70] {
            assert_eq!(client.roundtrip(&format!("PUSH {label_a} {t}")), "OK");
            assert_eq!(client.roundtrip(&format!("PUSH {label_b} {t}")), "OK");
        }
        assert_eq!(client.roundtrip("QUERY 0 100"), "OK n=0", "no anomalies during warmup");
        let stats = wait_for_stats(addr, |s| s.contains("STATS records=8 "));
        assert!(stats.contains(" nodes=2 "), "{stats}");
        assert!(stats.contains(" buffered=0 replayed=0 degraded_queries=0"), "{stats}");

        // Stop one node: the router degrades instead of failing.
        let b_addr = node_b.local_addr().to_string();
        node_b.shutdown();
        node_b.join().unwrap();
        wait_for_stats(addr, |s| s.contains(&format!("{b_addr}:down")));
        let reply = client.roundtrip("QUERY 0 100");
        assert_eq!(reply, format!("OK n=0 degraded={b_addr}"), "partial answers are tagged");

        // Acked records for the dead node park with their ack withheld;
        // records for the live node keep flowing.
        assert_eq!(client.roundtrip(&format!("PUSH {label_a} 80")), "OK");
        let mut parked = Client::connect(addr);
        parked.stream.set_read_timeout(Some(Duration::from_millis(400))).unwrap();
        parked.send(&format!("PUSH {label_b} 80"));
        let mut withheld = String::new();
        assert!(
            parked.reader.read_line(&mut withheld).is_err(),
            "ack must be withheld while the record is parked, got {withheld:?}"
        );
        let stats = wait_for_stats(addr, |s| s.contains(" buffered=1 "));
        assert!(stats.contains(" degraded_queries=1"), "{stats}");

        // Shutdown resolves the withheld ack with an explicit ERR.
        let mut shut = Client::connect(addr);
        assert_eq!(shut.roundtrip("SHUTDOWN"), "OK shutting down");
        router.join();
        parked.stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut resolved = String::new();
        parked.reader.read_line(&mut resolved).unwrap();
        assert_eq!(resolved.trim_end(), "ERR router shutting down; record not delivered");

        node_a.shutdown();
        node_a.join().unwrap();
    }

    #[test]
    fn router_replays_parked_records_when_the_node_returns() {
        let node_a = Server::start(node_config()).unwrap();
        // A fixed port for the second node so it can come back at the
        // same address after a stop.
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let b_addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let mut b_config = node_config();
        b_config.addr = b_addr.to_string();
        let node_b = Server::start(b_config.clone()).unwrap();

        let mut config =
            RouterConfig::new(vec![node_a.local_addr().to_string(), b_addr.to_string()]);
        config.probe_interval = Duration::from_millis(100);
        config.request_timeout = Duration::from_millis(500);
        config.backoff_max = Duration::from_millis(300);
        let router = Router::start(config).unwrap();
        let addr = router.local_addr();
        wait_for_stats(addr, |s| s.matches(":up").count() == 2);
        let (_, label_b) = split_labels();

        node_b.shutdown();
        node_b.join().unwrap();
        wait_for_stats(addr, |s| s.contains(&format!("{b_addr}:down")));

        // Park two acked records, then bring the node back: the replay
        // resolves the withheld acks with the node's real replies.
        let mut parked = Client::connect(addr);
        parked.send(&format!("PUSH {label_b} 0"));
        parked.send(&format!("PUSH {label_b} 10"));
        wait_for_stats(addr, |s| s.contains(" buffered=2 "));
        let node_b = Server::start(b_config).unwrap();
        assert_eq!(parked.recv(), "OK");
        assert_eq!(parked.recv(), "OK");
        let stats = wait_for_stats(addr, |s| s.contains(" replayed=2"));
        assert!(stats.contains(" buffered=0 "), "{stats}");
        assert!(stats.contains(&format!("{b_addr}:up")), "{stats}");

        let mut shut = Client::connect(addr);
        assert_eq!(shut.roundtrip("SHUTDOWN"), "OK shutting down");
        router.join();
        for node in [node_a, node_b] {
            node.shutdown();
            node.join().unwrap();
        }
    }
}
