//! Bounded per-node outage buffers and the reply tickets that let a
//! session withhold acknowledgements for parked records.
//!
//! When a downstream node is down, `PUSH` records routed to it are
//! parked here instead of being refused outright. The client's ack is
//! *withheld*, not faked: the session enqueues a [`BatchTicket`] in its
//! outbound queue, and the writer thread blocks on it until the
//! supervisor replays the parked lines on reconnect and resolves the
//! ticket with the node's real replies. Producers therefore observe
//! exactly the durability the node provides — an `OK` still means the
//! record reached a node that admitted it.
//!
//! The buffer is bounded by a record budget. Overflow is answered with
//! an explicit `ERR` so producers see backpressure instead of silent
//! loss, and a closed buffer (router shutting down) refuses parking the
//! same way. Every parked ticket is guaranteed to resolve: either the
//! replay resolves it with real replies, a failed replay resolves the
//! unconfirmed remainder with `ERR`, or shutdown drains the buffer
//! resolving everything with `ERR`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A promise for the replies to one parked sub-batch. The session's
/// writer thread waits on it; the node supervisor (or shutdown)
/// resolves it exactly once.
#[derive(Debug, Default)]
pub(crate) struct BatchTicket {
    replies: Mutex<Option<Vec<String>>>,
    resolved: Condvar,
}

impl BatchTicket {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Resolves the ticket with one reply per parked line. Idempotent:
    /// the first resolution wins (a shutdown racing a replay must not
    /// overwrite real replies with errors).
    pub fn resolve(&self, replies: Vec<String>) {
        let mut slot = self.replies.lock().expect("ticket lock never poisoned");
        if slot.is_none() {
            *slot = Some(replies);
            self.resolved.notify_all();
        }
    }

    /// Blocks until the ticket resolves, then returns the reply for
    /// line `idx` of the parked sub-batch.
    pub fn wait(&self, idx: usize) -> String {
        let mut slot = self.replies.lock().expect("ticket lock never poisoned");
        while slot.is_none() {
            slot = self.resolved.wait(slot).expect("ticket lock never poisoned");
        }
        let replies = slot.as_ref().expect("checked above");
        replies.get(idx).cloned().unwrap_or_else(|| "ERR reply lost".to_string())
    }
}

/// One parked sub-batch: the raw `PUSH` lines destined for a node plus
/// the ticket to resolve with their replies. `ticket` is `None` for
/// records parked by `NOACK` sessions — nobody waits for those replies,
/// so the replay discards them after reading.
#[derive(Debug)]
pub(crate) struct Parked {
    pub lines: Vec<String>,
    pub ticket: Option<Arc<BatchTicket>>,
}

/// Bounded FIFO of parked sub-batches for one node. Replay order is
/// admission order: entries are popped front-first.
#[derive(Debug)]
pub(crate) struct OutageBuffer {
    entries: VecDeque<Parked>,
    records: usize,
    capacity: usize,
    closed: bool,
}

impl OutageBuffer {
    pub fn new(capacity: usize) -> Self {
        OutageBuffer { entries: VecDeque::new(), records: 0, capacity, closed: false }
    }

    /// Parks a sub-batch. Returns `false` (refusing the batch, nothing
    /// enqueued) when the record budget would overflow or the buffer is
    /// closed for shutdown.
    pub fn park(&mut self, parked: Parked) -> bool {
        if self.closed || self.records + parked.lines.len() > self.capacity {
            return false;
        }
        self.records += parked.lines.len();
        self.entries.push_back(parked);
        true
    }

    /// Pops the oldest parked sub-batch for replay.
    pub fn pop(&mut self) -> Option<Parked> {
        let parked = self.entries.pop_front()?;
        self.records -= parked.lines.len();
        Some(parked)
    }

    /// Records currently parked.
    pub fn records(&self) -> usize {
        self.records
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Closes the buffer (further parking is refused) and resolves
    /// every parked ticket with `reply`. Called once at shutdown.
    pub fn close(&mut self, reply: &str) {
        self.closed = true;
        while let Some(parked) = self.pop() {
            if let Some(ticket) = parked.ticket {
                ticket.resolve(vec![reply.to_string(); parked.lines.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ticket_resolution_wakes_waiters_and_first_resolution_wins() {
        let ticket = BatchTicket::new();
        let waiter = {
            let ticket = Arc::clone(&ticket);
            thread::spawn(move || ticket.wait(1))
        };
        ticket.resolve(vec!["OK".to_string(), "LATE".to_string()]);
        ticket.resolve(vec!["ERR too late".to_string(); 2]);
        assert_eq!(waiter.join().unwrap(), "LATE");
        assert_eq!(ticket.wait(0), "OK", "second resolution did not overwrite");
        assert_eq!(ticket.wait(7), "ERR reply lost", "out-of-range index degrades gracefully");
    }

    #[test]
    fn buffer_bounds_by_records_and_replays_in_admission_order() {
        let mut buf = OutageBuffer::new(3);
        let park = |lines: &[&str]| Parked {
            lines: lines.iter().map(|s| s.to_string()).collect(),
            ticket: None,
        };
        assert!(buf.park(park(&["PUSH a 1", "PUSH a 2"])));
        assert!(buf.park(park(&["PUSH b 3"])));
        assert!(!buf.park(park(&["PUSH c 4"])), "record budget overflows");
        assert_eq!(buf.records(), 3);
        assert_eq!(buf.pop().unwrap().lines, ["PUSH a 1", "PUSH a 2"]);
        assert_eq!(buf.pop().unwrap().lines, ["PUSH b 3"]);
        assert!(buf.pop().is_none());
    }

    #[test]
    fn close_resolves_tickets_and_refuses_further_parking() {
        let mut buf = OutageBuffer::new(8);
        let ticket = BatchTicket::new();
        assert!(buf.park(Parked {
            lines: vec!["PUSH a 1".to_string()],
            ticket: Some(Arc::clone(&ticket)),
        }));
        buf.close("ERR router shutting down");
        assert_eq!(ticket.wait(0), "ERR router shutting down");
        assert!(!buf.park(Parked { lines: vec!["PUSH b 2".to_string()], ticket: None }));
        assert!(buf.is_empty());
    }
}
