//! Per-downstream connection supervision: the up/degraded/down state
//! machine, timed request/reply exchanges, exponential-backoff + jitter
//! reconnects, periodic `PING` health probes, outage-buffer replay, and
//! the `SUBSCRIBE` fan-in reader.
//!
//! Each downstream node owns one RPC connection (serialized by a
//! mutex — `PUSH` sub-batches, `QUERY` scatter legs, `STATS` and probes
//! all share it) plus, while any router client is subscribed, one
//! dedicated subscribe connection drained by the fan-in thread. All
//! socket reads carry the per-request timeout, so a slow or wedged node
//! costs a bounded wait, never a parked router thread.
//!
//! State machine: a node starts **down**, becomes **up** once a
//! connection exchanges a `PING`/`PONG` *and* the outage buffer has
//! fully replayed, drops to **degraded** when a request times out
//! (the node is alive but slow — new work parks rather than queueing
//! behind it), and to **down** on connection errors. Only the `up`
//! state accepts live RPCs; everything else parks into the
//! [`OutageBuffer`](super::buffer::OutageBuffer).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tiresias_telemetry::{Counter, Field, Histogram, Registry, SlowLog};

use crate::hub::Hub;

use super::buffer::OutageBuffer;

/// Node state: unreachable (connect/IO failure).
pub(crate) const STATE_DOWN: u8 = 0;
/// Node state: reachable but missed a request deadline.
pub(crate) const STATE_DEGRADED: u8 = 1;
/// Node state: healthy; live RPCs flow.
pub(crate) const STATE_UP: u8 = 2;

/// Initial reconnect backoff; doubles per failed attempt up to the
/// configured maximum, with multiplicative jitter on top.
pub(crate) const INITIAL_BACKOFF: Duration = Duration::from_millis(100);

/// Granularity at which blocking waits re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(25);

pub(crate) fn state_name(state: u8) -> &'static str {
    match state {
        STATE_UP => "up",
        STATE_DEGRADED => "degraded",
        _ => "down",
    }
}

/// Why an RPC failed — determines whether at-most-once forces an error
/// reply or the records may still be parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RpcError {
    /// Nothing was written to the node (no connection): the caller may
    /// safely park the records for replay.
    NotSent,
    /// Bytes may have reached the node but replies are unconfirmed: the
    /// caller must answer `ERR` rather than risk duplicate admission.
    Unknown,
}

/// One buffered duplex connection to a downstream node with a read
/// deadline on every reply.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Conn> {
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader })
    }

    pub fn send_lines(&mut self, lines: &[String]) -> io::Result<()> {
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
        self.stream.write_all(out.as_bytes())
    }

    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(format!("{line}\n").as_bytes())
    }

    /// Writes raw bytes — the v2 binary frame path (framing is the
    /// caller's problem; replies still arrive as text lines).
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// A clone of the write half, letting a drainer thread own the
    /// reading side while the session keeps writing.
    pub fn write_half(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Reads one reply line (trimmed). EOF surfaces as
    /// [`io::ErrorKind::UnexpectedEof`]; a missed deadline as the
    /// platform's timeout kind.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "node closed connection")),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(e),
        }
    }
}

pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
}

/// Per-node instrumentation the RPC paths feed, all registered with a
/// `node="<addr>"` label: the request round-trip histogram, the probe
/// outcome counters, and the router's slow-op log (shared across
/// nodes; the `node` field in each slow entry disambiguates).
#[derive(Debug, Clone)]
pub(crate) struct NodeTelemetry {
    /// Round-trip latency of completed RPC exchanges (probes included).
    pub rtt: Arc<Histogram>,
    /// `PING` probes answered `PONG` in time.
    pub probe_ok: Arc<Counter>,
    /// `PING` probes that timed out, erred, or answered garbage.
    pub probe_fail: Arc<Counter>,
    /// The router's structured slow-op log, when configured.
    pub slow: Option<Arc<SlowLog>>,
}

impl NodeTelemetry {
    pub fn register(registry: &Registry, addr: &str, slow: Option<Arc<SlowLog>>) -> NodeTelemetry {
        let labels: &[(&str, &str)] = &[("node", addr)];
        NodeTelemetry {
            rtt: registry.histogram(
                "tiresias_node_request_seconds",
                "Round-trip latency of RPC exchanges with a downstream node.",
                labels,
            ),
            probe_ok: registry.counter(
                "tiresias_node_probe_ok_total",
                "PING health probes the node answered in time.",
                labels,
            ),
            probe_fail: registry.counter(
                "tiresias_node_probe_fail_total",
                "PING health probes that timed out, erred, or answered garbage.",
                labels,
            ),
            slow,
        }
    }
}

/// One downstream `tiresias serve` node as seen by the router.
#[derive(Debug)]
pub(crate) struct Node {
    pub addr: String,
    state: AtomicU8,
    conn: Mutex<Option<Conn>>,
    pub buffer: Mutex<OutageBuffer>,
    /// Records ever parked in the outage buffer (monotone counter).
    pub buffered_total: AtomicU64,
    /// Records replayed from the outage buffer after reconnects.
    pub replayed: AtomicU64,
    request_timeout: Duration,
    telem: NodeTelemetry,
}

impl Node {
    pub fn new(
        addr: String,
        buffer_records: usize,
        request_timeout: Duration,
        telem: NodeTelemetry,
    ) -> Arc<Node> {
        Arc::new(Node {
            addr,
            state: AtomicU8::new(STATE_DOWN),
            conn: Mutex::new(None),
            buffer: Mutex::new(OutageBuffer::new(buffer_records)),
            buffered_total: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            request_timeout,
            telem,
        })
    }

    /// Records one finished RPC exchange into the node's round-trip
    /// histogram and, over threshold, the slow-op log. `NotSent`
    /// failures never reach here — no bytes moved, so there is no
    /// round trip to measure.
    fn observe_rpc(&self, rpc: &str, elapsed: Duration, lines: usize) {
        self.telem.rtt.record_duration(elapsed);
        if let Some(slow) = &self.telem.slow {
            slow.record(
                "node_request",
                elapsed,
                &[
                    ("node", Field::from(self.addr.as_str())),
                    ("rpc", Field::from(rpc)),
                    ("lines", Field::from(lines)),
                ],
            );
        }
    }

    pub fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    fn set_state(&self, state: u8) {
        self.state.store(state, Ordering::SeqCst);
    }

    /// Drops the connection and downgrades the state: a timeout means
    /// degraded (alive but slow), anything else means down.
    fn fail(&self, conn: &mut Option<Conn>, e: &io::Error) {
        *conn = None;
        self.set_state(if is_timeout(e) { STATE_DEGRADED } else { STATE_DOWN });
    }

    fn install(&self, conn: Conn) {
        *self.conn.lock().expect("conn lock never poisoned") = Some(conn);
    }

    /// Sends `lines` and reads exactly one reply per line. At-most-once
    /// discipline: on [`RpcError::Unknown`] the records must not be
    /// retried (the node may have admitted them).
    pub fn push_batch(&self, lines: &[String]) -> Result<Vec<String>, RpcError> {
        let t0 = Instant::now();
        let result = self.push_batch_inner(lines);
        if !matches!(result, Err(RpcError::NotSent)) {
            self.observe_rpc("push", t0.elapsed(), lines.len());
        }
        result
    }

    fn push_batch_inner(&self, lines: &[String]) -> Result<Vec<String>, RpcError> {
        let mut guard = self.conn.lock().expect("conn lock never poisoned");
        let Some(conn) = guard.as_mut() else {
            return Err(RpcError::NotSent);
        };
        if let Err(e) = conn.send_lines(lines) {
            self.fail(&mut guard, &e);
            return Err(RpcError::Unknown);
        }
        let mut replies = Vec::with_capacity(lines.len());
        for _ in lines {
            match guard.as_mut().expect("present above").read_line() {
                Ok(reply) => replies.push(reply),
                Err(e) => {
                    self.fail(&mut guard, &e);
                    return Err(RpcError::Unknown);
                }
            }
        }
        Ok(replies)
    }

    /// Sends one request and reads `EVENT` frames until a terminal
    /// `OK`/`ERR` line; returns `(frames, terminal)`.
    pub fn exchange_stream(&self, request: &str) -> Result<(Vec<String>, String), RpcError> {
        let t0 = Instant::now();
        let result = self.exchange_stream_inner(request);
        if !matches!(result, Err(RpcError::NotSent)) {
            let frames = result.as_ref().map_or(0, |(frames, _)| frames.len());
            self.observe_rpc("stream", t0.elapsed(), frames);
        }
        result
    }

    fn exchange_stream_inner(&self, request: &str) -> Result<(Vec<String>, String), RpcError> {
        let mut guard = self.conn.lock().expect("conn lock never poisoned");
        let Some(conn) = guard.as_mut() else {
            return Err(RpcError::NotSent);
        };
        if let Err(e) = conn.send_line(request) {
            self.fail(&mut guard, &e);
            return Err(RpcError::Unknown);
        }
        let mut frames = Vec::new();
        loop {
            match guard.as_mut().expect("present above").read_line() {
                Ok(line) if line.starts_with("OK") || line.starts_with("ERR") => {
                    return Ok((frames, line));
                }
                Ok(line) => frames.push(line),
                Err(e) => {
                    self.fail(&mut guard, &e);
                    return Err(RpcError::Unknown);
                }
            }
        }
    }

    /// One reply line for a one-line request (`STATS`, probes).
    pub fn request_line(&self, request: &str) -> Result<String, RpcError> {
        let t0 = Instant::now();
        let result = self.request_line_inner(request);
        if !matches!(result, Err(RpcError::NotSent)) {
            self.observe_rpc("line", t0.elapsed(), 1);
        }
        result
    }

    fn request_line_inner(&self, request: &str) -> Result<String, RpcError> {
        let mut guard = self.conn.lock().expect("conn lock never poisoned");
        let Some(conn) = guard.as_mut() else {
            return Err(RpcError::NotSent);
        };
        if let Err(e) = conn.send_line(request) {
            self.fail(&mut guard, &e);
            return Err(RpcError::Unknown);
        }
        match guard.as_mut().expect("present above").read_line() {
            Ok(reply) => Ok(reply),
            Err(e) => {
                self.fail(&mut guard, &e);
                Err(RpcError::Unknown)
            }
        }
    }

    /// Health probe: `PING` must answer `PONG`.
    fn ping(&self) -> bool {
        let healthy = match self.request_line("PING") {
            Ok(reply) if reply == "PONG" => true,
            Ok(_) => {
                // Protocol violation — treat the peer as down.
                let mut guard = self.conn.lock().expect("conn lock never poisoned");
                *guard = None;
                self.set_state(STATE_DOWN);
                false
            }
            Err(_) => false,
        };
        if healthy {
            self.telem.probe_ok.inc();
        } else {
            self.telem.probe_fail.inc();
        }
        healthy
    }

    /// Replays every parked sub-batch in admission order over the
    /// (fresh) RPC connection, resolving tickets with the node's real
    /// replies. Flips the node **up** — under the buffer lock, so no
    /// concurrent park can slip behind the replay — once the buffer is
    /// drained. Returns `false` if the connection failed mid-replay
    /// (unconfirmed records resolve `ERR`; the rest stay parked).
    pub fn replay_parked(&self) -> bool {
        loop {
            let parked = {
                let mut buf = self.buffer.lock().expect("buffer lock never poisoned");
                match buf.pop() {
                    Some(parked) => parked,
                    None => {
                        self.set_state(STATE_UP);
                        return true;
                    }
                }
            };
            let count = parked.lines.len();
            match self.push_batch(&parked.lines) {
                Ok(replies) => {
                    self.replayed.fetch_add(count as u64, Ordering::SeqCst);
                    if let Some(ticket) = parked.ticket {
                        ticket.resolve(replies);
                    }
                }
                Err(_) => {
                    // At-most-once: the lines may have reached the node;
                    // answering ERR is safe, re-sending could duplicate.
                    if let Some(ticket) = parked.ticket {
                        let reply =
                            format!("ERR node {} lost mid-replay; delivery unknown", self.addr);
                        ticket.resolve(vec![reply; count]);
                    }
                    return false;
                }
            }
        }
    }

    /// Records currently parked for this node.
    pub fn parked_records(&self) -> usize {
        self.buffer.lock().expect("buffer lock never poisoned").records()
    }
}

/// Deterministic xorshift64* jitter source (no wall clock, no global
/// state): each supervisor gets its own stream so reconnect storms
/// desynchronize.
#[derive(Debug)]
pub(crate) struct Jitter(u64);

impl Jitter {
    pub fn new(seed: u64) -> Jitter {
        Jitter(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// `base` scaled by a uniform factor in `[1.0, 2.0)`: full backoff
    /// plus up to one extra backoff of jitter.
    pub fn spread(&mut self, base: Duration) -> Duration {
        let frac = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(1.0 + frac)
    }
}

/// Sleeps `total` in small slices, returning early when `stop` flips.
pub(crate) fn sleep_interruptible(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
        let slice = remaining.min(STOP_POLL);
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

/// The per-node supervisor loop: reconnect with exponential backoff +
/// jitter while the node is not up, replay the outage buffer on
/// reconnect, and probe with `PING` at `probe_interval` while up.
pub(crate) fn run_supervisor(
    node: Arc<Node>,
    stop: Arc<AtomicBool>,
    probe_interval: Duration,
    backoff_max: Duration,
    seed: u64,
) {
    let mut jitter = Jitter::new(seed);
    let mut backoff = INITIAL_BACKOFF;
    while !stop.load(Ordering::SeqCst) {
        if node.state() == STATE_UP {
            sleep_interruptible(probe_interval, &stop);
            if stop.load(Ordering::SeqCst) {
                break;
            }
            // A failed probe downgrades the state (inside fail()); the
            // next loop iteration takes the reconnect path. A node that
            // went up-with-parked-work between probes cannot happen —
            // parking only occurs while not up.
            node.ping();
            continue;
        }
        match Conn::connect(&node.addr, node.request_timeout) {
            Ok(conn) => {
                node.install(conn);
                if node.ping() && node.replay_parked() {
                    backoff = INITIAL_BACKOFF;
                    continue;
                }
            }
            Err(_) => node.set_state(STATE_DOWN),
        }
        sleep_interruptible(jitter.spread(backoff), &stop);
        backoff = (backoff * 2).min(backoff_max);
    }
}

/// Parses the timeunit out of an `EVENT unit=<n> …` frame.
pub(crate) fn frame_unit(frame: &str) -> Option<u64> {
    let rest = frame.strip_prefix("EVENT ")?;
    let unit = rest.split_whitespace().find_map(|kv| kv.strip_prefix("unit="))?;
    unit.parse().ok()
}

/// The `SUBSCRIBE` fan-in reader for one node: maintains a dedicated
/// subscribe connection (independent reconnect loop), re-subscribes
/// with `FROM <last unit>` after an outage, dedups the overlap by
/// counting frames per unit (a node replays a unit's retained events in
/// a deterministic order, so "skip the first `k` frames of unit `u`"
/// resumes exactly), and broadcasts fresh frames into the router's hub.
pub(crate) fn run_fanin(
    addr: String,
    stop: Arc<AtomicBool>,
    hub: Arc<Hub>,
    next_unit: Arc<AtomicU64>,
    request_timeout: Duration,
    backoff_max: Duration,
    seed: u64,
) {
    let mut jitter = Jitter::new(seed);
    let mut backoff = INITIAL_BACKOFF;
    // Highest unit forwarded and how many of its frames went out.
    let mut pos: Option<(u64, usize)> = None;
    'reconnect: while !stop.load(Ordering::SeqCst) {
        let mut conn = match Conn::connect(&addr, request_timeout) {
            Ok(conn) => conn,
            Err(_) => {
                sleep_interruptible(jitter.spread(backoff), &stop);
                backoff = (backoff * 2).min(backoff_max);
                continue;
            }
        };
        let request = match pos {
            Some((unit, _)) => format!("SUBSCRIBE FROM {unit}"),
            None => "SUBSCRIBE".to_string(),
        };
        if conn.send_line(&request).is_err() {
            continue;
        }
        // The subscribe ack, waited for across read-timeout polls.
        loop {
            match conn.read_line() {
                Ok(line) if line.starts_with("OK subscribed") => break,
                Ok(_) | Err(_) if stop.load(Ordering::SeqCst) => break 'reconnect,
                Ok(_) => continue 'reconnect,
                Err(e) if is_timeout(&e) => continue,
                Err(_) => {
                    sleep_interruptible(jitter.spread(backoff), &stop);
                    backoff = (backoff * 2).min(backoff_max);
                    continue 'reconnect;
                }
            }
        }
        backoff = INITIAL_BACKOFF;
        // Frames of the resume unit already forwarded before the
        // outage: skip that many before forwarding again.
        let mut replay_skip = match pos {
            Some((_, seen)) => seen,
            None => 0,
        };
        loop {
            let line = match conn.read_line() {
                Ok(line) => line,
                Err(e) if is_timeout(&e) => {
                    if stop.load(Ordering::SeqCst) {
                        break 'reconnect;
                    }
                    continue;
                }
                Err(_) => continue 'reconnect,
            };
            let Some(unit) = frame_unit(&line) else {
                continue;
            };
            match &mut pos {
                Some((current, _)) if unit < *current => continue,
                Some((current, seen)) if unit == *current => {
                    if replay_skip > 0 {
                        replay_skip -= 1;
                        continue;
                    }
                    *seen += 1;
                }
                other => {
                    *other = Some((unit, 1));
                    replay_skip = 0;
                }
            }
            next_unit.fetch_max(unit + 1, Ordering::SeqCst);
            hub.broadcast(&[(unit, line)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_spreads_within_one_extra_backoff_and_streams_differ() {
        let base = Duration::from_millis(100);
        let mut a = Jitter::new(3);
        let mut b = Jitter::new(4);
        let mut diverged = false;
        for _ in 0..32 {
            let da = a.spread(base);
            let db = b.spread(base);
            for d in [da, db] {
                assert!(d >= base && d < base * 2, "{d:?} outside [base, 2*base)");
            }
            diverged |= da != db;
        }
        assert!(diverged, "two seeds never diverging would re-synchronize reconnect storms");
    }

    #[test]
    fn frame_unit_parses_events_and_rejects_noise() {
        assert_eq!(frame_unit("EVENT unit=9 time=8100 level=2 path=TV/No Service"), Some(9));
        assert_eq!(frame_unit("OK n=3"), None);
        assert_eq!(frame_unit("EVENT time=8100"), None);
    }

    #[test]
    fn node_without_connection_reports_not_sent() {
        let registry = Registry::new();
        let telem = NodeTelemetry::register(&registry, "127.0.0.1:1", None);
        let node = Node::new("127.0.0.1:1".to_string(), 8, Duration::from_millis(50), telem);
        assert_eq!(node.push_batch(&["PUSH a 1".to_string()]).unwrap_err(), RpcError::NotSent);
        assert_eq!(node.request_line("STATS").unwrap_err(), RpcError::NotSent);
        assert_eq!(node.state(), STATE_DOWN);
        assert_eq!(node.telem.rtt.snapshot().count(), 0, "NotSent must not record a round trip");
    }
}
