//! The broadcast hub: fans anomaly-event frames out to subscribed
//! sessions.
//!
//! Every session owns a bounded outbound queue (a
//! [`std::sync::mpsc::sync_channel`]) drained by the session's single
//! writer thread, so replies and events interleave line-atomically on
//! the socket. Subscribing registers a clone of that queue's sender
//! here.
//!
//! # Frame sequencing
//!
//! Frames are tagged with the timeunit they report, and every
//! subscription carries a `min_unit` floor: frames of older units are
//! skipped for that subscriber. This is what lets `SUBSCRIBE FROM`
//! splice a history replay onto the live stream gap-free — the session
//! replays retained events up to an exact store position, then
//! registers here so only genuinely newer frames follow.
//!
//! # Backpressure policy
//!
//! Broadcasting never blocks the detection pipeline: events are
//! enqueued with `try_send`. A subscriber whose queue is full — a
//! consumer reading slower than anomalies are produced for longer than
//! its whole buffer — is **dropped from the hub** (its event stream
//! ends; the session itself stays usable and can `SUBSCRIBE FROM` its
//! last seen unit to replay exactly what it missed). Slow consumers
//! therefore cost a counter increment, never memory or scheduler
//! stalls. The frames such a drop loses are counted into the session's
//! shared `dropped` counter, surfaced as `dropped_events=` in its
//! `STATS` reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Event fan-out over the subscribed sessions' outbound queues.
#[derive(Debug, Default)]
pub(crate) struct Hub {
    subscribers: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    /// Subscribers dropped because their queue overflowed.
    dropped_slow: AtomicU64,
}

#[derive(Debug)]
struct Subscriber {
    id: u64,
    tx: SyncSender<String>,
    /// Frames of units below this floor are skipped (already replayed
    /// to — or explicitly not wanted by — this subscriber).
    min_unit: u64,
    /// Shared with the owning session: frames this subscription failed
    /// to deliver when it was dropped for lagging.
    dropped: Arc<AtomicU64>,
}

impl Hub {
    /// Registers a session's outbound queue; returns the subscription
    /// id used to unsubscribe. `min_unit` filters frames of older
    /// units; `dropped` receives the count of frames lost if this
    /// subscription is ever dropped for lagging.
    pub fn subscribe(&self, tx: SyncSender<String>, min_unit: u64, dropped: Arc<AtomicU64>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().expect("hub lock never poisoned").push(Subscriber {
            id,
            tx,
            min_unit,
            dropped,
        });
        id
    }

    /// Removes a subscription (idempotent; unknown ids are ignored).
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().expect("hub lock never poisoned").retain(|s| s.id != id);
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("hub lock never poisoned").len()
    }

    /// Subscribers dropped for lagging (see the module docs).
    pub fn dropped_slow(&self) -> u64 {
        self.dropped_slow.load(Ordering::Relaxed)
    }

    /// Enqueues unit-tagged `frames` to every subscriber without
    /// blocking. Gone sessions are pruned; lagging ones are dropped per
    /// the backpressure policy, with the frames they lose counted into
    /// their session's `dropped` counter.
    pub fn broadcast(&self, frames: &[(u64, String)]) {
        if frames.is_empty() {
            return;
        }
        let mut subs = self.subscribers.lock().expect("hub lock never poisoned");
        subs.retain(|s| {
            for (i, (unit, line)) in frames.iter().enumerate() {
                if *unit < s.min_unit {
                    continue;
                }
                match s.tx.try_send(line.clone()) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.dropped_slow.fetch_add(1, Ordering::Relaxed);
                        let lost =
                            frames[i..].iter().filter(|(u, _)| *u >= s.min_unit).count() as u64;
                        s.dropped.fetch_add(lost, Ordering::Relaxed);
                        return false;
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn frames(units: &[u64]) -> Vec<(u64, String)> {
        units.iter().map(|&u| (u, format!("EVENT unit={u}"))).collect()
    }

    #[test]
    fn broadcast_reaches_all_subscribers() {
        let hub = Hub::default();
        let (tx1, rx1) = sync_channel(4);
        let (tx2, rx2) = sync_channel(4);
        hub.subscribe(tx1, 0, Arc::default());
        let id2 = hub.subscribe(tx2, 0, Arc::default());
        hub.broadcast(&frames(&[1, 2]));
        assert_eq!(rx1.try_iter().collect::<Vec<_>>(), ["EVENT unit=1", "EVENT unit=2"]);
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), ["EVENT unit=1", "EVENT unit=2"]);
        hub.unsubscribe(id2);
        assert_eq!(hub.subscriber_count(), 1);
    }

    #[test]
    fn min_unit_filters_already_replayed_frames() {
        let hub = Hub::default();
        let (tx, rx) = sync_channel(8);
        hub.subscribe(tx, 5, Arc::default());
        hub.broadcast(&frames(&[3, 4, 5, 6]));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), ["EVENT unit=5", "EVENT unit=6"]);
    }

    #[test]
    fn lagging_subscriber_is_dropped_and_losses_counted() {
        let hub = Hub::default();
        let (tx, rx) = sync_channel(1);
        let dropped = Arc::new(AtomicU64::new(0));
        hub.subscribe(tx, 0, Arc::clone(&dropped));
        hub.broadcast(&frames(&[1, 2, 3]));
        // Queue bound is 1: the second line overflows, dropping the
        // subscriber instead of blocking the broadcaster; both
        // undelivered frames count as this session's losses.
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(hub.dropped_slow(), 1);
        assert_eq!(dropped.load(Ordering::Relaxed), 2);
        assert_eq!(
            rx.try_iter().collect::<Vec<_>>(),
            ["EVENT unit=1"],
            "delivered prefix survives"
        );
    }

    #[test]
    fn disconnected_subscriber_is_pruned() {
        let hub = Hub::default();
        let (tx, rx) = sync_channel(4);
        let dropped = Arc::new(AtomicU64::new(0));
        hub.subscribe(tx, 0, Arc::clone(&dropped));
        drop(rx);
        hub.broadcast(&frames(&[1]));
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(hub.dropped_slow(), 0, "disconnects are not lag drops");
        assert_eq!(dropped.load(Ordering::Relaxed), 0);
    }
}
