//! The broadcast hub: fans anomaly-event frames out to subscribed
//! sessions.
//!
//! Every session owns a bounded outbound queue (a
//! [`std::sync::mpsc::sync_channel`]) drained by the session's single
//! writer thread, so replies and events interleave line-atomically on
//! the socket. Subscribing registers a clone of that queue's sender
//! here.
//!
//! # Backpressure policy
//!
//! Broadcasting never blocks the detection pipeline: events are
//! enqueued with `try_send`. A subscriber whose queue is full — a
//! consumer reading slower than anomalies are produced for longer than
//! its whole buffer — is **dropped from the hub** (its event stream
//! ends; the session itself stays usable and may re-`SUBSCRIBE`).
//! Slow consumers therefore cost a counter increment, never memory or
//! scheduler stalls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Mutex;

/// Event fan-out over the subscribed sessions' outbound queues.
#[derive(Debug, Default)]
pub(crate) struct Hub {
    subscribers: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    /// Subscribers dropped because their queue overflowed.
    dropped_slow: AtomicU64,
}

#[derive(Debug)]
struct Subscriber {
    id: u64,
    tx: SyncSender<String>,
}

impl Hub {
    /// Registers a session's outbound queue; returns the subscription
    /// id used to unsubscribe.
    pub fn subscribe(&self, tx: SyncSender<String>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().expect("hub lock never poisoned").push(Subscriber { id, tx });
        id
    }

    /// Removes a subscription (idempotent; unknown ids are ignored).
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().expect("hub lock never poisoned").retain(|s| s.id != id);
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("hub lock never poisoned").len()
    }

    /// Subscribers dropped for lagging (see the module docs).
    pub fn dropped_slow(&self) -> u64 {
        self.dropped_slow.load(Ordering::Relaxed)
    }

    /// Enqueues `lines` to every subscriber without blocking. Gone
    /// sessions are pruned; lagging ones are dropped per the
    /// backpressure policy.
    pub fn broadcast(&self, lines: &[String]) {
        if lines.is_empty() {
            return;
        }
        let mut subs = self.subscribers.lock().expect("hub lock never poisoned");
        subs.retain(|s| {
            for line in lines {
                match s.tx.try_send(line.clone()) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.dropped_slow.fetch_add(1, Ordering::Relaxed);
                        return false;
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn broadcast_reaches_all_subscribers() {
        let hub = Hub::default();
        let (tx1, rx1) = sync_channel(4);
        let (tx2, rx2) = sync_channel(4);
        hub.subscribe(tx1);
        let id2 = hub.subscribe(tx2);
        hub.broadcast(&["a".to_string(), "b".to_string()]);
        assert_eq!(rx1.try_iter().collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), ["a", "b"]);
        hub.unsubscribe(id2);
        assert_eq!(hub.subscriber_count(), 1);
    }

    #[test]
    fn lagging_subscriber_is_dropped_not_blocked() {
        let hub = Hub::default();
        let (tx, rx) = sync_channel(1);
        hub.subscribe(tx);
        hub.broadcast(&["one".to_string(), "two".to_string()]);
        // Queue bound is 1: the second line overflows, dropping the
        // subscriber instead of blocking the broadcaster.
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(hub.dropped_slow(), 1);
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), ["one"], "delivered prefix survives");
    }

    #[test]
    fn disconnected_subscriber_is_pruned() {
        let hub = Hub::default();
        let (tx, rx) = sync_channel(4);
        hub.subscribe(tx);
        drop(rx);
        hub.broadcast(&["x".to_string()]);
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(hub.dropped_slow(), 0, "disconnects are not lag drops");
    }
}
