//! End-to-end tests of the telemetry surface: the Prometheus
//! `/metrics` listener, the `STATS JSON` protocol variant, the slow-op
//! NDJSON log, and the router's per-node metrics — all over real
//! sockets against running daemons.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use serde::Value;
use tiresias_core::TiresiasBuilder;
use tiresias_server::{Router, RouterConfig, Server, ServerConfig};

const TIMEUNIT: u64 = 60;

fn config() -> ServerConfig {
    let builder = TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2);
    let mut config = ServerConfig::new(builder);
    config.grace = Duration::from_millis(300);
    config.tick = Duration::from_millis(20);
    config
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.stream.write_all(format!("{line}\n").as_bytes()).expect("writes");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reads");
        reply.trim_end().to_string()
    }
}

/// One plain-HTTP scrape of a `/metrics` listener.
fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("metrics listener up");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout set");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, body) = response.split_once("\r\n\r\n").expect("has a header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    body.to_string()
}

fn counter_value(stats: &Value, name: &str) -> Option<f64> {
    let Ok(Value::Seq(counters)) = stats.field("counters") else { return None };
    counters.iter().find_map(|c| match (c.field("name"), c.field("value")) {
        (Ok(Value::Str(n)), Ok(Value::U64(v))) if n == name => Some(*v as f64),
        (Ok(Value::Str(n)), Ok(Value::I64(v))) if n == name => Some(*v as f64),
        (Ok(Value::Str(n)), Ok(Value::F64(v))) if n == name => Some(*v),
        _ => None,
    })
}

#[test]
fn metrics_endpoint_and_stats_json_track_a_serve_workload() {
    let dir = std::env::temp_dir().join(format!("tiresias-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let slow_path = dir.join("slow.ndjson");
    let mut config = config();
    config.metrics_addr = Some("127.0.0.1:0".to_string());
    config.slow_log = Some(slow_path.clone());
    config.slow_ms = 0; // every close/query becomes a slow-op entry
    let server = Server::start(config).expect("starts");
    let metrics_addr = server.metrics_addr().expect("exporter configured");

    // An untouched exporter scrapes clean.
    let body = scrape(metrics_addr);
    assert!(body.contains("tiresias_admitted_records_total 0\n"), "{body}");

    let mut client = Client::connect(server.local_addr());
    let mut pushed = 0u64;
    for unit in 0..3u64 {
        for i in 0..10u64 {
            let reply = client.roundtrip(&format!("PUSH cat{i}/leaf {}", unit * TIMEUNIT + i));
            assert_eq!(reply, "OK");
            pushed += 1;
        }
    }
    // A query to feed the query histogram + slow log.
    assert!(client.roundtrip("QUERY 0 100").starts_with("OK"), "query answers");

    // The scrape sees the admissions, and histogram series are well
    // formed (cumulative buckets, +Inf == count).
    let body = scrape(metrics_addr);
    assert!(
        body.contains(&format!("tiresias_admitted_records_total {pushed}\n")),
        "admitted counter must advance:\n{body}",
    );
    assert!(body.contains("# TYPE tiresias_admit_batch_seconds histogram"), "{body}");
    assert!(body.contains("tiresias_query_seconds_count 1"), "{body}");
    let inf_lines: Vec<&str> = body
        .lines()
        .filter(|l| l.starts_with("tiresias_admit_batch_seconds_bucket{le=\"+Inf\"}"))
        .collect();
    assert_eq!(inf_lines.len(), 1, "{body}");

    // Non-/metrics paths 404 without killing the listener.
    let mut stream = TcpStream::connect(metrics_addr).expect("connects");
    stream.write_all(b"GET /other HTTP/1.0\r\n\r\n").expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.0 404"), "{response}");

    // STATS JSON is machine-parseable and agrees with the scrape; the
    // legacy one-liner still answers beside it.
    let json_line = client.roundtrip("STATS JSON");
    let stats = serde_json::parse_value(&json_line).expect("STATS JSON parses");
    assert_eq!(counter_value(&stats, "tiresias_admitted_records_total"), Some(pushed as f64));
    let legacy = client.roundtrip("STATS");
    assert!(legacy.starts_with("STATS "), "{legacy}");
    assert!(legacy.contains(&format!("records={pushed}")), "{legacy}");
    assert_eq!(client.roundtrip("STATS NOW"), "ERR STATS takes no arguments except JSON");

    // Wall-clock closes (grace 300 ms) eventually land "close" ops in
    // the slow log with the 0 ms threshold.
    let deadline = Instant::now() + Duration::from_secs(10);
    let slow = loop {
        let text = std::fs::read_to_string(&slow_path).unwrap_or_default();
        if text.lines().any(|l| l.contains("\"op\":\"close\"")) {
            break text;
        }
        assert!(Instant::now() < deadline, "no close op in slow log; have: {text}");
        std::thread::sleep(Duration::from_millis(50));
    };
    for line in slow.lines() {
        let entry = serde_json::parse_value(line).expect("slow log line parses");
        assert!(entry.field("ts_ms").is_ok(), "{line}");
        assert!(matches!(entry.field("op"), Ok(Value::Str(_))), "{line}");
        assert!(entry.field("ms").is_ok(), "{line}");
    }
    assert!(slow.lines().any(|l| l.contains("\"op\":\"query\"")), "{slow}");

    server.shutdown();
    server.join().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rebalancing_gauges_reach_stats_and_metrics() {
    let mut config = config();
    config.metrics_addr = Some("127.0.0.1:0".to_string());
    config.rebalance = tiresias_core::RebalanceConfig::enabled();
    let server = Server::start(config).expect("starts");
    let metrics_addr = server.metrics_addr().expect("exporter configured");

    // Untouched engine: all three series exist and read zero.
    let body = scrape(metrics_addr);
    assert!(body.contains("tiresias_rebalances_total 0\n"), "{body}");
    assert!(body.contains("tiresias_pinned_labels 0\n"), "{body}");
    assert!(body.contains("tiresias_shard_balance 0\n"), "{body}");

    // Skewed pushes: one hot label, a few light ones, two timeunits so
    // the wall-clock close crosses an epoch barrier and the balancer
    // measures the epoch it just sealed.
    let mut client = Client::connect(server.local_addr());
    for unit in 0..2u64 {
        for i in 0..40u64 {
            let reply = client.roundtrip(&format!("PUSH hot/leaf {}", unit * TIMEUNIT + i % 50));
            assert_eq!(reply, "OK");
            let reply =
                client.roundtrip(&format!("PUSH cold{}/leaf {}", i % 4, unit * TIMEUNIT + i % 50));
            assert_eq!(reply, "OK");
        }
    }

    // The measured worst/mean ratio lands in the gauge once the barrier
    // passes (grace-driven, so poll). Two shards with one dominant
    // label: the ratio is strictly above 1.
    let deadline = Instant::now() + Duration::from_secs(10);
    let balance = loop {
        let body = scrape(metrics_addr);
        let value = body
            .lines()
            .find_map(|l| l.strip_prefix("tiresias_shard_balance "))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .expect("gauge always present");
        if value > 0.0 {
            break value;
        }
        assert!(Instant::now() < deadline, "no epoch ever measured:\n{body}");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(balance > 1.0 && balance < 2.0 + f64::EPSILON, "2-shard worst/mean: {balance}");

    // The legacy STATS one-liner carries the same fields.
    let legacy = client.roundtrip("STATS");
    assert!(legacy.contains("rebalances="), "{legacy}");
    assert!(legacy.contains("pinned_labels="), "{legacy}");
    assert!(legacy.contains(&format!("shard_balance={balance:.3}")), "{legacy}");

    // And STATS JSON exposes the rebalance counter to scrapers that
    // prefer the socket protocol.
    let stats = serde_json::parse_value(&client.roundtrip("STATS JSON")).expect("parses");
    assert!(counter_value(&stats, "tiresias_rebalances_total").is_some(), "{stats:?}");

    server.shutdown();
    server.join().expect("clean shutdown");
}

#[test]
fn router_exports_per_node_metrics_and_stats_json() {
    let node = Server::start(config()).expect("node starts");
    let node_addr = node.local_addr().to_string();
    let mut rconfig = RouterConfig::new(vec![node_addr.clone()]);
    rconfig.probe_interval = Duration::from_millis(100);
    rconfig.request_timeout = Duration::from_millis(500);
    rconfig.metrics_addr = Some("127.0.0.1:0".to_string());
    let router = Router::start(rconfig).expect("router starts");
    let metrics_addr = router.metrics_addr().expect("exporter configured");

    // Wait until the supervisor adopts the node.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = Client::connect(router.local_addr());
        if client.roundtrip("STATS").contains(":up") {
            break;
        }
        assert!(Instant::now() < deadline, "node never came up");
        std::thread::sleep(Duration::from_millis(50));
    }

    let body = scrape(metrics_addr);
    let state_line = format!("tiresias_node_state{{node=\"{node_addr}\"}} 2\n");
    assert!(body.contains(&state_line), "node must export as up:\n{body}");
    assert!(body.contains("tiresias_node_request_seconds_bucket{node=\""), "{body}");
    assert!(body.contains("tiresias_degraded_queries_total 0\n"), "{body}");

    // Probes have been flowing, so the ok counter is positive already.
    let mut client = Client::connect(router.local_addr());
    let stats = serde_json::parse_value(&client.roundtrip("STATS JSON")).expect("parses");
    let Ok(Value::Seq(counters)) = stats.field("counters") else { panic!("counters") };
    let probe_ok = counters
        .iter()
        .find(
            |c| matches!(c.field("name"), Ok(Value::Str(n)) if n == "tiresias_node_probe_ok_total"),
        )
        .expect("probe counter registered");
    let Ok(Value::Map(labels)) = probe_ok.field("labels") else { panic!("labels") };
    assert_eq!(labels, &[("node".to_string(), Value::Str(node_addr.clone()))]);
    match probe_ok.field("value") {
        Ok(Value::U64(v)) => assert!(*v >= 1, "probe_ok never incremented"),
        other => panic!("probe_ok value: {other:?}"),
    }

    let mut shut = Client::connect(router.local_addr());
    assert_eq!(shut.roundtrip("SHUTDOWN"), "OK shutting down");
    router.join();
    node.shutdown();
    node.join().expect("node joins");
}
