//! Stress test of the lock-free concurrent admission path: eight
//! client threads push interleaved in-order, late and ahead records
//! across forced unit closes while a ninth hammers `STATS`
//! continuously. The `PUSH` path acquires no global engine lock, so
//! admission must keep flowing regardless of the `STATS` traffic; the
//! merged event stream must equal an offline replay of exactly the
//! accepted records; and the late/ahead counters must be exact.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tiresias_core::TiresiasBuilder;
use tiresias_server::protocol::format_event;
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 60;
const CLIENTS: usize = 8;
const CATEGORIES: u64 = 8;
const UNITS: u64 = 10;
const BURST_UNIT: u64 = 8;
/// Deliberately small ahead bound (instead of the default 1000) so the
/// test exercises the configurable `max_ahead_units` plumbing.
const MAX_AHEAD: u64 = 50;
const LATE_PER_CLIENT: usize = 5;
const AHEAD_PER_CLIENT: usize = 3;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

/// Unit-ordered records: steady traffic over eight top-level
/// categories with bursts injected at `BURST_UNIT` on two of them.
fn workload() -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..UNITS {
        for k in 0..CATEGORIES {
            let count = if u == BURST_UNIT && (k == 0 || k == 3) { 80 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

fn offline_event_frames(records: &[(String, u64)]) -> Vec<String> {
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(records).expect("replay ingests");
    let mut frames: Vec<String> = engine.anomalies().iter().map(format_event).collect();
    frames.sort();
    frames
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn collect_events(subscriber: &mut Client, expected: usize, deadline: Duration) -> Vec<String> {
    let start = Instant::now();
    let mut frames = Vec::new();
    while frames.len() < expected && start.elapsed() < deadline {
        let mut line = String::new();
        match subscriber.reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim_end();
                if line.starts_with("EVENT ") {
                    frames.push(line.to_string());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("subscriber read failed: {e}"),
        }
    }
    frames
}

/// Polls `STATS` until the open unit reaches `unit` (closes are
/// grace-driven, so this simply outwaits the grace window).
fn await_open_unit(client: &mut Client, unit: u64) {
    let needle = format!("open_unit={unit} ");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.roundtrip("STATS");
        if stats.contains(&needle) {
            return;
        }
        assert!(Instant::now() < deadline, "open unit never reached {unit}: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn eight_clients_admit_concurrently_with_exact_accounting() {
    let mut config = ServerConfig::new(builder());
    // The grace window must outlast the whole in-order push phase (so
    // no straggler is closed out from under a slow client thread) but
    // stay short enough that the forced closes actually happen.
    config.grace = Duration::from_millis(3_000);
    config.tick = Duration::from_millis(20);
    config.max_ahead_units = MAX_AHEAD;
    let server = Server::start(config).expect("server starts");

    let records = workload();
    let expected_events = {
        // The fence record below is admitted too, so the replay
        // includes it.
        let mut all = records.clone();
        all.push(("fence/advance".to_string(), UNITS * TIMEUNIT + 1));
        offline_event_frames(&all)
    };
    assert!(!expected_events.is_empty(), "the workload produces anomalies");

    let mut subscriber = Client::connect(&server);
    assert!(subscriber.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));

    // A competing STATS hammer: runs for the whole push phase, proving
    // the serialized back-end lock never gates admission.
    let stop_stats = AtomicBool::new(false);
    let stats_snapshots = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let stats_thread = {
            let server = &server;
            let stop = &stop_stats;
            let snapshots = &stats_snapshots;
            scope.spawn(move || {
                let mut client = Client::connect(server);
                while !stop.load(Ordering::SeqCst) {
                    let stats = client.roundtrip("STATS");
                    assert!(stats.starts_with("STATS "), "{stats}");
                    snapshots.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        // Phase 1: eight clients push the whole in-order workload,
        // dealt round-robin so their streams interleave mid-unit, with
        // per-record `OK` acknowledgements. Forced unit closes fire on
        // the scheduler (grace expiry) while later units are still
        // being pushed.
        std::thread::scope(|push_scope| {
            for c in 0..CLIENTS {
                let records = &records;
                let server = &server;
                push_scope.spawn(move || {
                    let mut client = Client::connect(server);
                    let mine: Vec<&(String, u64)> =
                        records.iter().skip(c).step_by(CLIENTS).collect();
                    let mut payload = String::new();
                    for (path, t) in &mine {
                        payload.push_str(&format!("PUSH {path} {t}\n"));
                    }
                    client.stream.write_all(payload.as_bytes()).expect("bulk push");
                    for i in 0..mine.len() {
                        assert_eq!(client.recv(), "OK", "record {i} of client {c} admitted");
                    }
                    assert_eq!(client.roundtrip("QUIT"), "BYE");
                });
            }
        });

        // Phase 2: force the remaining closes — a fence record one
        // unit past the workload starts the grace timer; when it
        // expires, the watermark closes through the burst unit and the
        // events stream out.
        let mut control = Client::connect(&server);
        assert_eq!(
            control.roundtrip(&format!("PUSH fence/advance {}", UNITS * TIMEUNIT + 1)),
            "OK"
        );
        await_open_unit(&mut control, UNITS);

        // Phase 3: exact late/ahead accounting. Every client pushes
        // LATE_PER_CLIENT records of the long-closed unit 0 and
        // AHEAD_PER_CLIENT records beyond the max-ahead bound, checking
        // each individual reply.
        std::thread::scope(|late_scope| {
            for c in 0..CLIENTS {
                let server = &server;
                late_scope.spawn(move || {
                    let mut client = Client::connect(server);
                    for i in 0..LATE_PER_CLIENT {
                        let reply = client.roundtrip(&format!("PUSH cat{}/leaf {}", c % 8, i));
                        assert_eq!(reply, "LATE", "client {c} late record {i}");
                    }
                    let too_far = (UNITS + MAX_AHEAD + 1 + c as u64) * TIMEUNIT;
                    for i in 0..AHEAD_PER_CLIENT {
                        let reply = client.roundtrip(&format!("PUSH cat{}/leaf {too_far}", c % 8));
                        assert!(
                            reply.starts_with("ERR ") && reply.contains("ahead"),
                            "client {c} ahead record {i}: {reply}"
                        );
                    }
                    assert_eq!(client.roundtrip("QUIT"), "BYE");
                });
            }
        });

        stop_stats.store(true, Ordering::SeqCst);
        stats_thread.join().expect("stats hammer finishes");
    });
    assert!(
        stats_snapshots.load(Ordering::SeqCst) > 0,
        "STATS kept answering concurrently with the pushes"
    );

    // Exact accounting: every workload record plus the fence was
    // admitted; every phase-3 record was dropped and counted.
    let mut control = Client::connect(&server);
    let stats = control.roundtrip("STATS");
    let accepted = records.len() + 1;
    assert!(stats.contains(&format!("records={accepted} ")), "{stats}");
    assert!(stats.contains(&format!("late={} ", CLIENTS * LATE_PER_CLIENT)), "{stats}");
    assert!(stats.contains(&format!("ahead={} ", CLIENTS * AHEAD_PER_CLIENT)), "{stats}");
    // The new per-shard gauges are present, one slot per shard.
    for field in ["shard_open=", "rings="] {
        let value = stats.split(field).nth(1).expect(field).split(' ').next().unwrap();
        assert_eq!(value.split('|').count(), 2, "{field} has one slot per shard: {stats}");
    }

    // The live event stream equals the offline replay of exactly the
    // accepted records — late/ahead drops included in neither.
    let mut got = collect_events(&mut subscriber, expected_events.len(), Duration::from_secs(30));
    got.sort();
    assert_eq!(got, expected_events, "live anomaly stream equals the offline replay");

    assert_eq!(control.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("clean shutdown");
}
