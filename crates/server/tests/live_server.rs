//! End-to-end tests of the streaming daemon: concurrent clients over
//! real sockets, live-vs-replay equivalence of the anomaly stream,
//! protocol robustness, and the checkpoint-on-shutdown lifecycle.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tiresias_core::{TiresiasBuilder, CHECKPOINT_VERSION};
use tiresias_server::protocol::format_event;
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 60;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

fn config() -> ServerConfig {
    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(600);
    config.tick = Duration::from_millis(20);
    config
}

/// `(path, timestamp)` records for `units` timeunits of steady traffic
/// over several top-level categories, with bursts injected at
/// `burst_unit` on two of them.
fn workload(units: u64, burst_unit: u64) -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..units {
        for k in 0..6u64 {
            let count = if u == burst_unit && (k == 0 || k == 3) { 80 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

/// The offline ground truth: replay the same records through a fresh
/// sharded engine (batch boundaries don't matter; the records are
/// already unit-ordered) and return the anomaly stream as `EVENT`
/// frames.
fn offline_event_frames(records: &[(String, u64)]) -> Vec<String> {
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(records).expect("replay ingests");
    let mut frames: Vec<String> = engine.anomalies().iter().map(format_event).collect();
    frames.sort();
    frames
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// Reads `EVENT` frames from a subscribed client until `expected`
/// frames arrived or the deadline passes.
fn collect_events(subscriber: &mut Client, expected: usize, deadline: Duration) -> Vec<String> {
    let start = Instant::now();
    let mut frames = Vec::new();
    while frames.len() < expected && start.elapsed() < deadline {
        let mut line = String::new();
        match subscriber.reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim_end();
                if line.starts_with("EVENT ") {
                    frames.push(line.to_string());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("subscriber read failed: {e}"),
        }
    }
    frames
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tiresias-test-{}-{name}", std::process::id()))
}

#[test]
fn live_stream_matches_offline_replay() {
    let server = Server::start(config()).expect("server starts");
    let records = workload(10, 8);
    let expected = offline_event_frames(&records);
    assert!(!expected.is_empty(), "the workload produces anomalies");

    let mut subscriber = Client::connect(&server);
    assert!(subscriber.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));

    // Three concurrent clients, records dealt round-robin so every
    // client's stream interleaves with the others mid-unit.
    std::thread::scope(|scope| {
        for c in 0..3usize {
            let records = &records;
            let server = &server;
            scope.spawn(move || {
                let mut client = Client::connect(server);
                assert_eq!(client.roundtrip("NOACK"), "OK");
                let mut payload = String::new();
                for (path, t) in records.iter().skip(c).step_by(3) {
                    payload.push_str(&format!("PUSH {path} {t}\n"));
                }
                client.stream.write_all(payload.as_bytes()).expect("bulk push");
                // Graceful close: QUIT flushes the session before EOF.
                assert_eq!(client.roundtrip("QUIT"), "BYE");
            });
        }
    });

    // The grace window expires, units close, events stream out live.
    let mut got = collect_events(&mut subscriber, expected.len(), Duration::from_secs(30));
    got.sort();
    assert_eq!(got, expected, "live anomaly stream equals the offline replay");

    let mut control = Client::connect(&server);
    let stats = control.roundtrip("STATS");
    assert!(stats.starts_with("STATS "), "{stats}");
    assert!(stats.contains(&format!("records={}", records.len())), "{stats}");
    assert!(stats.contains("late=0"), "{stats}");
    assert!(stats.contains("subscribers=1"), "{stats}");
    assert_eq!(control.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("clean shutdown");
}

#[test]
fn malformed_lines_get_err_and_never_wedge_the_session() {
    let server = Server::start(config()).expect("server starts");
    let mut client = Client::connect(&server);

    assert!(client.roundtrip("FLY me to the moon").starts_with("ERR "));
    assert!(client.roundtrip("PUSH").starts_with("ERR "));
    assert!(client.roundtrip("PUSH cat/leaf notanumber").starts_with("ERR "));
    assert!(client.roundtrip("push lowercase 1").starts_with("ERR "));
    assert!(client.roundtrip("STATS please").starts_with("ERR "));
    // Protocol-valid but absurd: a timestamp astronomically far ahead
    // must be refused, not buffered as a future close target.
    assert_eq!(client.roundtrip("PUSH cat/leaf 0"), "OK");
    let reply = client.roundtrip("PUSH cat/leaf 18446744073709551615");
    assert!(reply.starts_with("ERR ") && reply.contains("ahead"), "{reply}");

    // The same session still works afterwards…
    assert_eq!(client.roundtrip("PING"), "PONG");
    assert_eq!(client.roundtrip("PUSH cat/leaf 30"), "OK");
    let stats = client.roundtrip("STATS");
    assert!(stats.contains("records=2"), "{stats}");
    assert!(stats.contains("ahead=1"), "{stats}");

    // …and so does a second, concurrent session (the shard rings never
    // saw the malformed lines).
    let mut other = Client::connect(&server);
    assert_eq!(other.roundtrip("PUSH cat/other 40"), "OK");
    let stats = other.roundtrip("STATS");
    assert!(stats.contains("records=3"), "{stats}");

    // Subscribing twice re-registers (reviving a lag-dropped stream)
    // rather than stacking duplicate subscriptions.
    assert!(other.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
    assert!(other.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
    let stats = other.roundtrip("STATS");
    assert!(stats.contains("subscribers=1"), "{stats}");

    other.send("SHUTDOWN");
    server.join().expect("clean shutdown");
}

#[test]
fn pipelined_commands_observe_prior_pushes() {
    let server = Server::start(config()).expect("server starts");
    let mut client = Client::connect(&server);
    // One write: two pushes then STATS. The STATS snapshot (and its
    // reply position) must come after both records were admitted.
    client.send("PUSH a/x 5\nPUSH b/y 6\nSTATS");
    assert_eq!(client.recv(), "OK");
    assert_eq!(client.recv(), "OK");
    let stats = client.recv();
    assert!(stats.starts_with("STATS "), "{stats}");
    assert!(stats.contains("records=2"), "pipelined STATS sees both records: {stats}");
    client.send("SHUTDOWN");
    server.join().expect("clean shutdown");
}

#[test]
fn late_records_get_late_replies_and_are_counted() {
    let mut config = config();
    config.grace = Duration::from_millis(100);
    let server = Server::start(config).expect("server starts");
    let mut client = Client::connect(&server);

    assert_eq!(client.roundtrip("PUSH cat/leaf 10"), "OK");
    // A unit-2 record starts the watermark grace timer for unit 0.
    assert_eq!(client.roundtrip(&format!("PUSH cat/leaf {}", 2 * TIMEUNIT + 5)), "OK");
    std::thread::sleep(Duration::from_millis(400));
    // Units 0 and 1 are closed now: a unit-0 straggler is late.
    assert_eq!(client.roundtrip("PUSH cat/leaf 20"), "LATE");
    let stats = client.roundtrip("STATS");
    assert!(stats.contains("late=1"), "{stats}");
    assert!(stats.contains("open_unit=2"), "{stats}");

    client.send("SHUTDOWN");
    server.join().expect("clean shutdown");
}

#[test]
fn shutdown_checkpoint_resumes_mid_unit() {
    let ckpt = temp_path("resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let records = workload(10, 8);
    // Split mid-unit-6: phase one gets everything before unit 6 plus
    // half of unit 6's records, phase two the rest.
    let unit6_start = records.iter().position(|&(_, t)| t / TIMEUNIT == 6).unwrap();
    let unit7_start = records.iter().position(|&(_, t)| t / TIMEUNIT == 7).unwrap();
    let split = unit6_start + (unit7_start - unit6_start) / 2;

    let mut phase_one_events = {
        let mut config = config();
        config.checkpoint = Some(ckpt.clone());
        let server = Server::start(config).expect("server starts");
        let mut subscriber = Client::connect(&server);
        assert!(subscriber.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
        let mut client = Client::connect(&server);
        assert_eq!(client.roundtrip("NOACK"), "OK");
        for (path, t) in &records[..split] {
            client.send(&format!("PUSH {path} {t}"));
        }
        assert_eq!(client.roundtrip("PING"), "PONG"); // fence: all pushes ingested
        client.send("SHUTDOWN");
        server.join().expect("clean shutdown");
        collect_events(&mut subscriber, usize::MAX, Duration::from_millis(300))
    };

    let json = std::fs::read_to_string(&ckpt).expect("checkpoint written on shutdown");
    assert!(json.contains(&format!("\"version\":{CHECKPOINT_VERSION}")), "versioned envelope");
    assert!(json.contains("\"kind\":\"sharded\""));

    let mut phase_two_events = {
        let mut config = config();
        config.checkpoint = Some(ckpt.clone());
        let server = Server::start(config).expect("server resumes from checkpoint");
        let mut subscriber = Client::connect(&server);
        assert!(subscriber.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
        let mut client = Client::connect(&server);
        assert_eq!(client.roundtrip("NOACK"), "OK");
        for (path, t) in &records[split..] {
            client.send(&format!("PUSH {path} {t}"));
        }
        assert_eq!(client.roundtrip("PING"), "PONG");
        // Let the watermark close through the burst unit so the events
        // stream live, before shutdown.
        let expected = offline_event_frames(&records);
        let got = collect_events(&mut subscriber, expected.len(), Duration::from_secs(30));
        client.send("SHUTDOWN");
        server.join().expect("clean shutdown");
        got
    };

    let mut all = Vec::new();
    all.append(&mut phase_one_events);
    all.append(&mut phase_two_events);
    all.sort();
    let expected = offline_event_frames(&records);
    assert_eq!(all, expected, "events across restart equal one uninterrupted offline replay");

    let _ = std::fs::remove_file(&ckpt);
}
