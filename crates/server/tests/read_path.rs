//! End-to-end tests of the server's read path: `QUERY` and
//! `SUBSCRIBE FROM` answered from the retained report store must equal
//! the offline `ShardedTiresias` replay exactly; the retention budget
//! must evict; and a lag-dropped subscriber must be able to recover
//! precisely what it missed.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tiresias_core::TiresiasBuilder;
use tiresias_server::protocol::format_event;
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 60;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

fn config() -> ServerConfig {
    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(400);
    config.tick = Duration::from_millis(20);
    config
}

/// Steady traffic over `categories` top-level labels for `units`
/// timeunits; every category in `burst_cats` bursts at `burst_unit`.
fn workload(
    units: u64,
    categories: u64,
    burst_unit: u64,
    burst_cats: &[u64],
) -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..units {
        for k in 0..categories {
            let count = if u == burst_unit && burst_cats.contains(&k) { 80 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

/// The offline ground truth: the same records through a fresh sharded
/// engine. Returns the anomaly stream as `EVENT` frames in store
/// (`(unit, path)`) order.
fn offline_event_frames(records: &[(String, u64)]) -> Vec<String> {
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(records).expect("replay ingests");
    engine.anomalies().iter().map(format_event).collect()
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// Reads reply lines until the `STATS` line (skipping interleaved
    /// `EVENT` frames on subscribed sessions).
    fn stats(&mut self) -> String {
        self.send("STATS");
        loop {
            let line = self.recv();
            if line.starts_with("STATS ") || line.starts_with("ERR ") {
                return line;
            }
        }
    }

    /// Issues a `QUERY` and returns (event frames, `OK n=` count).
    fn query(&mut self, request: &str) -> (Vec<String>, usize) {
        self.send(request);
        let mut frames = Vec::new();
        loop {
            let line = self.recv();
            if let Some(n) = line.strip_prefix("OK n=") {
                return (frames, n.parse().expect("count parses"));
            }
            assert!(line.starts_with("EVENT "), "unexpected QUERY reply: {line}");
            frames.push(line);
        }
    }

    /// Reads `EVENT` frames until `expected` arrived or the deadline
    /// passes.
    fn collect_events(&mut self, expected: usize, deadline: Duration) -> Vec<String> {
        let start = Instant::now();
        let mut frames = Vec::new();
        while frames.len() < expected && start.elapsed() < deadline {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let line = line.trim_end();
                    if line.starts_with("EVENT ") {
                        frames.push(line.to_string());
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => panic!("subscriber read failed: {e}"),
            }
        }
        frames
    }
}

/// Polls `STATS` until `predicate` matches (30 s deadline).
fn wait_for_stats(server: &Server, predicate: impl Fn(&str) -> bool) -> String {
    let mut client = Client::connect(server);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats();
        if predicate(&stats) {
            client.send("QUIT");
            return stats;
        }
        assert!(Instant::now() < deadline, "STATS never converged: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stats_field(stats: &str, key: &str) -> String {
    stats
        .split_whitespace()
        .find_map(|pair| pair.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("{key} missing from {stats}"))
        .to_string()
}

#[test]
fn query_and_subscribe_from_catch_up_equal_offline_replay() {
    let server = Server::start(config()).expect("server starts");
    let records = workload(10, 6, 8, &[0, 3]);
    let expected = offline_event_frames(&records);
    assert!(expected.len() >= 2, "the workload produces anomalies: {expected:?}");

    // Three concurrent clients, records dealt round-robin so every
    // client's stream interleaves with the others mid-unit.
    std::thread::scope(|scope| {
        for c in 0..3usize {
            let records = &records;
            let server = &server;
            scope.spawn(move || {
                let mut client = Client::connect(server);
                assert_eq!(client.roundtrip("NOACK"), "OK");
                let mut payload = String::new();
                for (path, t) in records.iter().skip(c).step_by(3) {
                    payload.push_str(&format!("PUSH {path} {t}\n"));
                }
                client.stream.write_all(payload.as_bytes()).expect("bulk push");
                assert_eq!(client.roundtrip("QUIT"), "BYE");
            });
        }
    });

    // The grace window expires, units close, events land in the store.
    let needle = format!("events={}", expected.len());
    wait_for_stats(&server, |s| s.contains(&needle));

    // QUERY returns the offline replay exactly — same units, paths and
    // counters, in the same `(unit, path)` order.
    let mut client = Client::connect(&server);
    let (frames, n) = client.query("QUERY 0 9999");
    assert_eq!(n, frames.len());
    assert_eq!(frames, expected, "QUERY equals the offline replay exactly");

    // Narrowing clauses agree with the offline stream too.
    let (cat0, _) = client.query("QUERY 0 9999 PREFIX cat0");
    let offline_cat0: Vec<String> =
        expected.iter().filter(|f| f.contains("path=cat0")).cloned().collect();
    assert_eq!(cat0, offline_cat0, "PREFIX narrows to the subtree");
    let (level2, _) = client.query("QUERY 0 9999 LEVEL 2");
    let offline_level2: Vec<String> =
        expected.iter().filter(|f| f.contains("level=2")).cloned().collect();
    assert_eq!(level2, offline_level2, "LEVEL filters exactly");
    let (limited, n_limited) = client.query("QUERY 0 9999 LIMIT 2");
    assert_eq!((limited.len(), n_limited), (2, 2), "LIMIT bounds the batch");
    assert_eq!(limited[..], expected[..2]);
    let (ranged, _) = client.query("QUERY 8 8");
    let offline_unit8: Vec<String> =
        expected.iter().filter(|f| f.contains("unit=8 ")).cloned().collect();
    assert_eq!(ranged, offline_unit8, "the unit range is inclusive");

    // A fresh subscriber catching up FROM 0 replays the whole retained
    // history in order — equal to the offline replay, gap-free.
    let mut late_subscriber = Client::connect(&server);
    assert_eq!(late_subscriber.roundtrip("SUBSCRIBE FROM 0"), "OK subscribed from=0");
    let replayed = late_subscriber.collect_events(expected.len(), Duration::from_secs(10));
    assert_eq!(replayed, expected, "SUBSCRIBE FROM catch-up equals the offline replay");

    client.send("SHUTDOWN");
    server.join().expect("clean shutdown");
}

#[test]
fn retention_budget_evicts_oldest_units() {
    let mut config = config();
    config.retain_units = Some(2);
    let server = Server::start(config).expect("server starts");

    // Bursts in two separate units: cat0 at unit 6, cat1 at unit 9.
    let mut records = workload(8, 4, 6, &[0]);
    records.extend(workload(12, 4, 9, &[1]).into_iter().filter(|&(_, t)| t / TIMEUNIT >= 8));
    let offline = offline_event_frames(&records);
    let unit6: Vec<&String> = offline.iter().filter(|f| f.contains("unit=6 ")).collect();
    let unit9: Vec<String> = offline.iter().filter(|f| f.contains("unit=9 ")).cloned().collect();
    assert!(!unit6.is_empty() && !unit9.is_empty(), "bursts in both units: {offline:?}");

    let mut feeder = Client::connect(&server);
    assert_eq!(feeder.roundtrip("NOACK"), "OK");
    let mut payload = String::new();
    for (path, t) in &records {
        payload.push_str(&format!("PUSH {path} {t}\n"));
    }
    // A unit-11 record drives the data watermark so units 0..=10 close
    // deterministically once the grace window expires.
    payload.push_str(&format!("PUSH cat0/leaf {}\n", 11 * TIMEUNIT));
    feeder.stream.write_all(payload.as_bytes()).expect("bulk push");
    assert_eq!(feeder.roundtrip("PING"), "PONG");

    let stats = wait_for_stats(&server, |s| s.contains("last_closed=10"));
    // retain=2 over last_closed=10 keeps units 9..=10 only.
    assert_eq!(stats_field(&stats, "retain"), "2");
    let evicted: u64 = stats_field(&stats, "events_evicted").parse().expect("number");
    assert!(evicted >= unit6.len() as u64, "unit-6 events evicted: {stats}");

    let mut client = Client::connect(&server);
    let (frames, _) = client.query("QUERY 0 9999");
    assert_eq!(frames, unit9, "only retained units answer; evicted history is gone");

    // A catch-up from evicted history resumes at the retained horizon
    // and replays exactly what is left.
    assert_eq!(client.roundtrip("SUBSCRIBE FROM 0"), "OK subscribed from=9");
    let replayed = client.collect_events(unit9.len(), Duration::from_secs(10));
    assert_eq!(replayed, unit9);

    client.send("SHUTDOWN");
    server.join().expect("clean shutdown");
}

#[test]
fn stalled_subscriber_is_dropped_counted_and_recovers_missed_events() {
    let mut config = config();
    // A two-line outbound queue: the burst unit's broadcast (a dozen-
    // plus frames enqueued back to back) overflows it deterministically.
    config.subscriber_queue = 2;
    let server = Server::start(config).expect("server starts");

    // Every category bursts at unit 8: one broadcast of 16 frames,
    // enqueued back to back far faster than the stalled session's
    // writer drains them.
    let records = workload(10, 16, 8, &(0..16).collect::<Vec<u64>>());
    let expected = offline_event_frames(&records);
    assert!(expected.len() >= 12, "a broad burst: {expected:?}");

    let mut subscriber = Client::connect(&server);
    assert!(subscriber.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
    // The subscriber now stalls: it reads nothing while the burst unit
    // closes and its frames flood the two-line queue.

    let mut feeder = Client::connect(&server);
    assert_eq!(feeder.roundtrip("NOACK"), "OK");
    let mut payload = String::new();
    for (path, t) in &records {
        payload.push_str(&format!("PUSH {path} {t}\n"));
    }
    feeder.stream.write_all(payload.as_bytes()).expect("bulk push");
    assert_eq!(feeder.roundtrip("PING"), "PONG");

    // The hub drops the laggard and counts it.
    let stats = wait_for_stats(&server, |s| {
        s.contains("dropped_slow=1") && s.contains(&format!("events={}", expected.len()))
    });
    assert_eq!(stats_field(&stats, "subscribers"), "0", "the laggard left the hub: {stats}");

    // The stalled subscriber wakes up, drains what it did receive and
    // learns from its own STATS how many frames its subscription lost.
    let received = subscriber.collect_events(usize::MAX, Duration::from_millis(500));
    assert!(received.len() < expected.len(), "the stall lost events");
    let dropped: u64 = stats_field(&subscriber.stats(), "dropped_events").parse().expect("number");
    assert!(dropped >= 1, "the session knows it lost events");

    // Recovery: SUBSCRIBE FROM its last seen unit replays the exact
    // missed events (last seen unit included, so nothing can fall in a
    // gap) and splices onto the live stream.
    let last_seen = received
        .iter()
        .filter_map(|f| {
            f.split_whitespace().find_map(|p| p.strip_prefix("unit=")).map(|u| u.parse().unwrap())
        })
        .max()
        .unwrap_or(0u64);
    let reply = subscriber.roundtrip(&format!("SUBSCRIBE FROM {last_seen}"));
    assert_eq!(reply, format!("OK subscribed from={last_seen}"));
    let expected_replay: Vec<String> = {
        let mut engine = builder().build_sharded().expect("valid test config");
        engine.push_batch(&records).expect("replay ingests");
        engine.anomalies().iter().filter(|e| e.unit >= last_seen).map(format_event).collect()
    };
    let replayed = subscriber.collect_events(expected_replay.len(), Duration::from_secs(10));
    assert_eq!(replayed, expected_replay, "the catch-up replays the exact missed events");
    // Union check: everything the offline replay produced was seen.
    let mut seen: Vec<&String> = received.iter().chain(&replayed).collect();
    seen.sort();
    seen.dedup();
    let mut all: Vec<&String> = expected.iter().collect();
    all.sort();
    assert_eq!(seen, all, "received ∪ replayed covers the whole stream");

    // The revived subscription is live again: a fresh burst in unit 10
    // reaches it without another SUBSCRIBE.
    let mut tail = String::new();
    for i in 0..80 {
        tail.push_str(&format!("PUSH cat0/leaf {}\n", 10 * TIMEUNIT + (i % TIMEUNIT)));
    }
    for k in 1..16 {
        for i in 0..8 {
            tail.push_str(&format!("PUSH cat{k}/leaf {}\n", 10 * TIMEUNIT + i));
        }
    }
    tail.push_str(&format!("PUSH cat1/leaf {}\n", 11 * TIMEUNIT));
    feeder.stream.write_all(tail.as_bytes()).expect("tail push");
    assert_eq!(feeder.roundtrip("PING"), "PONG");
    let live = subscriber.collect_events(1, Duration::from_secs(15));
    assert!(
        live.iter().all(|f| f.contains("unit=10 ")),
        "the spliced stream continues with unit-10 events only (no duplicates): {live:?}"
    );
    assert!(!live.is_empty(), "the revived subscription receives live events");

    feeder.send("SHUTDOWN");
    server.join().expect("clean shutdown");
}
