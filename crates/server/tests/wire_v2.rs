//! Binary wire-protocol v2 tests: codec round-trip and corruption
//! properties, session negotiation and ack semantics over real
//! sockets, hostile-frame handling (every corrupt frame answers `ERR`
//! and closes the session without wedging the daemon), and
//! text-versus-v2 admission equivalence including the heavy-hitter
//! gauge.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tiresias_core::TiresiasBuilder;
use tiresias_server::protocol::{format_event, v2};
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 60;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

fn config() -> ServerConfig {
    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(600);
    config.tick = Duration::from_millis(20);
    config
}

/// A hand-assembled DATA frame (kind byte 0) with self-consistent
/// CRCs — for payloads [`v2::FrameEncoder`] would refuse to produce.
fn raw_data_frame(seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(v2::HEADER_BYTES + payload.len());
    f.extend_from_slice(&v2::MAGIC);
    f.push(v2::VERSION);
    f.push(0);
    f.extend_from_slice(&seq.to_le_bytes());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&v2::crc32(payload).to_le_bytes());
    let hcrc = v2::crc32(&f[0..16]);
    f.extend_from_slice(&hcrc.to_le_bytes());
    f.extend_from_slice(payload);
    f
}

/// Runs one frame's bytes through the same decode stages the server
/// uses: header, payload CRC, dictionary, records.
fn decode_frame(frame: &[u8], dict: &mut Vec<String>) -> Result<Vec<(String, u64)>, String> {
    if frame.len() < v2::HEADER_BYTES {
        return Err("short header".to_string());
    }
    let header: [u8; v2::HEADER_BYTES] =
        frame[..v2::HEADER_BYTES].try_into().expect("header slice");
    let header = v2::decode_header(&header)?;
    let payload = &frame[v2::HEADER_BYTES..];
    if payload.len() != header.payload_len as usize {
        return Err("payload length mismatch".to_string());
    }
    if v2::crc32(payload) != header.payload_crc {
        return Err("payload CRC mismatch".to_string());
    }
    let (_, offset) = v2::decode_dict(payload, dict)?;
    let mut out = Vec::new();
    for rec in v2::records(payload, offset, dict.len())? {
        let (id, t_secs) = rec?;
        out.push((dict[id as usize].clone(), t_secs));
    }
    Ok(out)
}

const LABELS: &[&str] = &[
    "tv/no-service",
    "internet/slow",
    "region-3/pop-1/service 42",
    "a",
    "phone/drop/long-tail-label-with-some-length-to-it",
    "日本/漢字/ラベル",
    "x/y/z",
    "tv/audio",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encoding any record stream into frames of arbitrary size and
    /// decoding them back through one shared dictionary reproduces the
    /// records exactly — labels, order and timestamps (including
    /// extreme timestamps exercising the wrapping delta coding).
    #[test]
    fn round_trip_identity(
        recs in prop::collection::vec(
            (0usize..LABELS.len(), 0u64..=u64::MAX), 0..300),
        chunk in 1usize..64,
    ) {
        let recs: Vec<(String, u64)> =
            recs.into_iter().map(|(i, t)| (LABELS[i].to_string(), t)).collect();
        let mut enc = v2::FrameEncoder::new();
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for (seq, batch) in recs.chunks(chunk).enumerate() {
            let mut out = Vec::new();
            enc.encode_data(seq as u32, batch, &mut out);
            frames.push(out);
        }
        let mut dict = Vec::new();
        let mut decoded = Vec::new();
        for frame in &frames {
            decoded.extend(decode_frame(frame, &mut dict).expect("valid frame decodes"));
        }
        prop_assert_eq!(decoded, recs);
        prop_assert!(dict.len() <= LABELS.len(), "labels are interned once");
    }

    /// Any single bit flip anywhere in a frame is caught by one of the
    /// two CRCs (or an earlier header check) — it never decodes
    /// cleanly and never panics.
    #[test]
    fn single_bit_flips_never_decode(
        recs in prop::collection::vec((0usize..LABELS.len(), 0u64..100_000), 1..40),
        flip_bit in 0usize..8,
        flip_pos in 0u64..=u64::MAX,
    ) {
        let recs: Vec<(String, u64)> =
            recs.into_iter().map(|(i, t)| (LABELS[i].to_string(), t)).collect();
        let mut enc = v2::FrameEncoder::new();
        let mut frame = Vec::new();
        enc.encode_data(7, &recs, &mut frame);
        let pos = (flip_pos % frame.len() as u64) as usize;
        frame[pos] ^= 1 << flip_bit;
        let mut dict = Vec::new();
        prop_assert!(decode_frame(&frame, &mut dict).is_err(), "flip at byte {} bit {}", pos, flip_bit);
    }

    /// A truncated payload re-wrapped in a self-consistent header (a
    /// hostile peer, not line noise — both CRCs check out) still fails
    /// structurally: declared dictionary/record counts can never match
    /// a strict prefix. Decode errors, never panics, never over-reads.
    #[test]
    fn truncated_payloads_always_error(
        recs in prop::collection::vec((0usize..LABELS.len(), 0u64..100_000), 1..40),
        cut in 0u64..=u64::MAX,
    ) {
        let recs: Vec<(String, u64)> =
            recs.into_iter().map(|(i, t)| (LABELS[i].to_string(), t)).collect();
        let mut enc = v2::FrameEncoder::new();
        let mut frame = Vec::new();
        enc.encode_data(0, &recs, &mut frame);
        let payload = &frame[v2::HEADER_BYTES..];
        let cut = (cut % payload.len() as u64) as usize;
        let rewrapped = raw_data_frame(0, &payload[..cut]);
        let mut dict = Vec::new();
        prop_assert!(decode_frame(&rewrapped, &mut dict).is_err(), "cut at {}", cut);
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("writes frame bytes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// Negotiates the session into binary mode.
    fn upgrade(&mut self) {
        assert_eq!(self.roundtrip("HELLO v2"), "OK v2");
        assert_eq!(self.roundtrip("UPGRADE"), "OK upgraded");
    }

    /// True once the server closed this session (EOF on the reader).
    fn closed(&mut self) -> bool {
        let mut buf = [0u8; 1];
        matches!(self.reader.read(&mut buf), Ok(0))
    }
}

#[test]
fn negotiation_acks_and_end_round_trip() {
    let server = Server::start(config()).expect("server starts");
    let mut client = Client::connect(&server);

    // The probe is stateless: the session still speaks text after it.
    assert_eq!(client.roundtrip("HELLO v2"), "OK v2");
    assert_eq!(client.roundtrip("PING"), "PONG");
    assert!(client.roundtrip("HELLO v3").starts_with("ERR "), "unknown capability refused");

    client.upgrade();
    let mut enc = v2::FrameEncoder::new();
    let mut frame = Vec::new();
    enc.encode_data(0, &[("tv/no-service", 5u64), ("internet/slow", 9)], &mut frame);
    client.send_bytes(&frame);
    assert_eq!(client.recv(), "OK frame=0 n=2 late=0 ahead=0");

    // PING frames answer PONG with the echoed seq.
    client.send_bytes(&v2::control_frame(v2::FrameKind::Ping, 41));
    assert_eq!(client.recv(), "PONG frame=41");

    // While the session is in binary mode the proto gauges say so.
    let mut control = Client::connect(&server);
    let stats = control.roundtrip("STATS");
    assert!(stats.contains("proto_v2=1"), "{stats}");
    assert!(stats.contains("v2_frames=2"), "{stats}");
    assert!(stats.contains("v2_dict_entries=2"), "{stats}");

    // An absurdly-ahead timestamp is dropped and reported in the
    // frame ack — it never poisons the session, and the dictionaries
    // still agree afterwards.
    frame.clear();
    enc.encode_data(1, &[("tv/no-service", u64::MAX)], &mut frame);
    client.send_bytes(&frame);
    assert_eq!(client.recv(), "OK frame=1 n=0 late=0 ahead=1");

    // END drops back to text; the dictionary survives for the next
    // UPGRADE on this connection, so a dictionary-less frame still
    // resolves ids interned before the END.
    client.send_bytes(&v2::control_frame(v2::FrameKind::End, 2));
    assert_eq!(client.recv(), "OK text");
    assert_eq!(client.roundtrip("PING"), "PONG");
    assert_eq!(client.roundtrip("UPGRADE"), "OK upgraded");
    frame.clear();
    enc.encode_data(3, &[("tv/no-service", 11u64), ("internet/slow", 14)], &mut frame);
    assert_eq!(enc.dict_len(), 2, "the encoder resent no labels");
    client.send_bytes(&frame);
    assert_eq!(client.recv(), "OK frame=3 n=2 late=0 ahead=0");

    let stats = control.roundtrip("STATS");
    assert!(stats.contains("records=4"), "{stats}");
    assert_eq!(control.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("clean shutdown");
}

#[test]
fn corrupt_frames_answer_err_close_the_session_and_spare_the_daemon() {
    let server = Server::start(config()).expect("server starts");

    // Each hostile frame gets its own session; after the ERR the
    // session must be closed (the byte stream can't be trusted), and
    // the daemon must keep serving everyone else.
    let mut valid = Vec::new();
    v2::FrameEncoder::new().encode_data(0, &[("tv/no-service", 5u64)], &mut valid);

    // Garbage magic.
    let mut garbage = valid.clone();
    garbage[0] = b'X';
    // A payload bit flip behind an intact header.
    let mut flipped = valid.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    // An oversized payload claim with self-consistent CRCs.
    let mut oversized = raw_data_frame(9, &[]);
    oversized[8..12].copy_from_slice(&(v2::MAX_PAYLOAD_BYTES + 1).to_le_bytes());
    let hcrc = v2::crc32(&oversized[0..16]);
    oversized[16..20].copy_from_slice(&hcrc.to_le_bytes());
    // A record referencing a dictionary id that was never interned.
    let mut bad_id = Vec::new();
    v2::put_uvarint(&mut bad_id, 0); // no new dictionary entries
    v2::put_uvarint(&mut bad_id, 1); // one record …
    v2::put_uvarint(&mut bad_id, 7); // … naming id 7 of an empty dict
    v2::put_uvarint(&mut bad_id, 0);
    let bad_id = raw_data_frame(3, &bad_id);
    // A control frame smuggling a payload.
    let ping_payload = {
        let mut f = raw_data_frame(4, &[0x00]);
        f[3] = 2; // PING
        let hcrc = v2::crc32(&f[0..16]);
        f[16..20].copy_from_slice(&hcrc.to_le_bytes());
        f
    };

    for (what, frame) in [
        ("garbage magic", &garbage),
        ("payload bit flip", &flipped),
        ("oversized payload claim", &oversized),
        ("unknown dictionary id", &bad_id),
        ("ping with payload", &ping_payload),
    ] {
        let mut client = Client::connect(&server);
        client.upgrade();
        client.send_bytes(frame);
        let reply = client.recv();
        assert!(reply.starts_with("ERR "), "{what}: {reply}");
        assert!(client.closed(), "{what}: session must close after a corrupt frame");
    }

    // The daemon survived all of it.
    let mut survivor = Client::connect(&server);
    assert_eq!(survivor.roundtrip("PUSH tv/no-service 3"), "OK");
    let stats = survivor.roundtrip("STATS");
    assert!(stats.contains("records=1"), "only the survivor's record admitted: {stats}");
    assert_eq!(survivor.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("clean shutdown");
}

/// `(path, timestamp)` records over several top-level categories with
/// bursts at `burst_unit` on two of them (the live_server workload).
fn workload(units: u64, burst_unit: u64) -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..units {
        for k in 0..6u64 {
            let count = if u == burst_unit && (k == 0 || k == 3) { 80 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    records
}

fn offline_event_frames(records: &[(String, u64)]) -> Vec<String> {
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(records).expect("replay ingests");
    let mut frames: Vec<String> = engine.anomalies().iter().map(format_event).collect();
    frames.sort();
    frames
}

fn collect_events(subscriber: &mut Client, expected: usize, deadline: Duration) -> Vec<String> {
    let start = Instant::now();
    let mut frames = Vec::new();
    while frames.len() < expected && start.elapsed() < deadline {
        let mut line = String::new();
        match subscriber.reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim_end();
                if line.starts_with("EVENT ") {
                    frames.push(line.to_string());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("subscriber read failed: {e}"),
        }
    }
    frames
}

/// Pulls the `top_paths=` field out of a `STATS` line.
fn top_paths(stats: &str) -> String {
    stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix("top_paths="))
        .unwrap_or_else(|| panic!("top_paths= missing from {stats}"))
        .to_string()
}

/// The same workload admitted over text on one daemon and over v2
/// frames on another — with a text and a v2 session *coexisting* on
/// the latter — must produce byte-identical anomaly streams and
/// heavy-hitter gauges.
#[test]
fn text_and_v2_admission_are_equivalent_and_coexist() {
    let records = workload(10, 8);
    let expected = offline_event_frames(&records);
    assert!(!expected.is_empty(), "the workload produces anomalies");

    // Daemon A: everything over text.
    let server_a = Server::start(config()).expect("server starts");
    let mut sub_a = Client::connect(&server_a);
    assert!(sub_a.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
    {
        let mut client = Client::connect(&server_a);
        assert_eq!(client.roundtrip("NOACK"), "OK");
        let mut payload = String::new();
        for (path, t) in &records {
            payload.push_str(&format!("PUSH {path} {t}\n"));
        }
        client.send_bytes(payload.as_bytes());
        assert_eq!(client.roundtrip("QUIT"), "BYE");
    }

    // Daemon B: the even-indexed records over a v2 session, the odd
    // ones over a concurrent text session on the same daemon.
    let server_b = Server::start(config()).expect("server starts");
    let mut sub_b = Client::connect(&server_b);
    assert!(sub_b.roundtrip("SUBSCRIBE").starts_with("OK subscribed from="));
    std::thread::scope(|scope| {
        let recs = &records;
        let server = &server_b;
        scope.spawn(move || {
            let mut client = Client::connect(server);
            assert_eq!(client.roundtrip("NOACK"), "OK");
            client.upgrade();
            let mut enc = v2::FrameEncoder::new();
            let even: Vec<(String, u64)> = recs.iter().step_by(2).cloned().collect();
            for (seq, batch) in even.chunks(97).enumerate() {
                let mut frame = Vec::new();
                enc.encode_data(seq as u32, batch, &mut frame);
                client.send_bytes(&frame);
            }
            let fence = v2::control_frame(v2::FrameKind::Ping, 1_000_000);
            client.send_bytes(&fence);
            assert_eq!(client.recv(), "PONG frame=1000000");
        });
        scope.spawn(move || {
            let mut client = Client::connect(server);
            assert_eq!(client.roundtrip("NOACK"), "OK");
            let mut payload = String::new();
            for (path, t) in recs.iter().skip(1).step_by(2) {
                payload.push_str(&format!("PUSH {path} {t}\n"));
            }
            client.send_bytes(payload.as_bytes());
            assert_eq!(client.roundtrip("QUIT"), "BYE");
        });
    });

    let deadline = Duration::from_secs(30);
    let mut got_a = collect_events(&mut sub_a, expected.len(), deadline);
    let mut got_b = collect_events(&mut sub_b, expected.len(), deadline);
    got_a.sort();
    got_b.sort();
    assert_eq!(got_a, expected, "text admission equals the offline replay");
    assert_eq!(got_b, expected, "mixed text+v2 admission equals the offline replay");

    let mut control_a = Client::connect(&server_a);
    let mut control_b = Client::connect(&server_b);
    let stats_a = control_a.roundtrip("STATS");
    let stats_b = control_b.roundtrip("STATS");
    for stats in [&stats_a, &stats_b] {
        assert!(stats.contains(&format!("records={}", records.len())), "{stats}");
        assert!(stats.contains("late=0"), "{stats}");
    }
    assert_eq!(
        top_paths(&stats_a),
        top_paths(&stats_b),
        "the heavy-hitter gauge is protocol-independent"
    );

    assert_eq!(control_a.roundtrip("SHUTDOWN"), "OK shutting down");
    assert_eq!(control_b.roundtrip("SHUTDOWN"), "OK shutting down");
    server_a.join().expect("clean shutdown");
    server_b.join().expect("clean shutdown");
}

/// Under `NOACK`, a frame whose records were (partially) dropped still
/// reports the drops: the ack line is suppressed only when nothing was
/// lost.
#[test]
fn noack_v2_reports_dropped_records_unsolicited() {
    let server = Server::start(config()).expect("server starts");
    let mut client = Client::connect(&server);
    assert_eq!(client.roundtrip("NOACK"), "OK");
    client.upgrade();

    let mut enc = v2::FrameEncoder::new();
    let mut frame = Vec::new();
    // Anchor the stream and advance far enough that unit 0 closes once
    // the grace window expires.
    let recs: Vec<(String, u64)> =
        (0..8u64).map(|u| ("tv/no-service".to_string(), u * TIMEUNIT)).collect();
    enc.encode_data(0, &recs, &mut frame);
    client.send_bytes(&frame);
    client.send_bytes(&v2::control_frame(v2::FrameKind::Ping, 1));
    assert_eq!(client.recv(), "PONG frame=1");

    // Wait for the grace window so early units are closed.
    let mut control = Client::connect(&server);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = control.roundtrip("STATS");
        if stats.contains("last_closed=6") {
            break;
        }
        assert!(Instant::now() < deadline, "units never closed: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // A frame landing in a closed unit is dropped as late — and the
    // drop is reported even though the session never asked for acks.
    frame.clear();
    enc.encode_data(2, &[("tv/no-service", 1u64)], &mut frame);
    client.send_bytes(&frame);
    assert_eq!(client.recv(), "OK frame=2 n=0 late=1 ahead=0");

    assert_eq!(control.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("clean shutdown");
}
