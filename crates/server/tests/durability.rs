//! End-to-end tests of the durability layer: a crash image (WAL, no
//! checkpoint) must replay into exactly the acked anomaly stream; a
//! clean shutdown's checkpoint must make the replay set empty and
//! survive torn `.tmp` leftovers; and the retention budget must spill
//! to segments that `QUERY`/`SUBSCRIBE FROM` serve transparently.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tiresias_core::{TiresiasBuilder, WalSyncPolicy};
use tiresias_server::protocol::format_event;
use tiresias_server::{Server, ServerConfig};

const TIMEUNIT: u64 = 60;

fn builder() -> TiresiasBuilder {
    TiresiasBuilder::new()
        .timeunit_secs(TIMEUNIT)
        .window_len(16)
        .threshold(5.0)
        .season_length(4)
        .sensitivity(2.0, 5.0)
        .warmup_units(4)
        .shards(2)
}

fn config(data_dir: &Path) -> ServerConfig {
    let mut config = ServerConfig::new(builder());
    config.grace = Duration::from_millis(400);
    config.tick = Duration::from_millis(20);
    config.data_dir = Some(data_dir.to_path_buf());
    // Every acked batch is on disk before its reply: the crash image
    // taken below must contain everything a client saw acknowledged.
    config.wal_sync = WalSyncPolicy::EveryBatch;
    config
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tiresias-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

/// Copies a data directory recursively — the moral equivalent of the
/// on-disk state a `kill -9` leaves behind, taken while the daemon is
/// still live (quiescent: all pushes acked, closes converged).
fn snapshot(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("snapshot dir creates");
    for entry in std::fs::read_dir(src).expect("source dir lists") {
        let entry = entry.expect("dir entry reads");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            snapshot(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("file copies");
        }
    }
}

/// Steady traffic over `categories` top-level labels for `units`
/// timeunits; every category in `burst_cats` bursts at `burst_unit`.
fn workload(
    units: u64,
    categories: u64,
    burst_unit: u64,
    burst_cats: &[u64],
) -> Vec<(String, u64)> {
    let mut records = Vec::new();
    for u in 0..units {
        for k in 0..categories {
            let count = if u == burst_unit && burst_cats.contains(&k) { 80 } else { 8 };
            for i in 0..count {
                records.push((format!("cat{k}/leaf"), u * TIMEUNIT + (i % TIMEUNIT)));
            }
        }
    }
    // A sentinel one unit past the workload drives the data watermark
    // so every workload unit closes deterministically — included here
    // so the offline ground truth closes the same units the server
    // does.
    records.push(("cat0/leaf".to_string(), units * TIMEUNIT));
    records
}

/// The offline ground truth: the same records through a fresh,
/// unbounded sharded engine, as `EVENT` frames in `(unit, path)` order.
fn offline_event_frames(records: &[(String, u64)]) -> Vec<String> {
    let mut engine = builder().build_sharded().expect("valid test config");
    engine.push_batch(records).expect("replay ingests");
    engine.anomalies().iter().map(format_event).collect()
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("writes");
        self.stream.write_all(b"\n").expect("writes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reads a reply line");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    fn stats(&mut self) -> String {
        self.send("STATS");
        loop {
            let line = self.recv();
            if line.starts_with("STATS ") || line.starts_with("ERR ") {
                return line;
            }
        }
    }

    fn query(&mut self, request: &str) -> (Vec<String>, usize) {
        self.send(request);
        let mut frames = Vec::new();
        loop {
            let line = self.recv();
            if let Some(n) = line.strip_prefix("OK n=") {
                return (frames, n.parse().expect("count parses"));
            }
            assert!(line.starts_with("EVENT "), "unexpected QUERY reply: {line}");
            frames.push(line);
        }
    }

    fn collect_events(&mut self, expected: usize, deadline: Duration) -> Vec<String> {
        let start = Instant::now();
        let mut frames = Vec::new();
        while frames.len() < expected && start.elapsed() < deadline {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let line = line.trim_end();
                    if line.starts_with("EVENT ") {
                        frames.push(line.to_string());
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => panic!("subscriber read failed: {e}"),
            }
        }
        frames
    }
}

fn wait_for_stats(server: &Server, predicate: impl Fn(&str) -> bool) -> String {
    let mut client = Client::connect(server);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats();
        if predicate(&stats) {
            client.send("QUIT");
            return stats;
        }
        assert!(Instant::now() < deadline, "STATS never converged: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stats_field(stats: &str, key: &str) -> String {
    stats
        .split_whitespace()
        .find_map(|pair| pair.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("{key} missing from {stats}"))
        .to_string()
}

/// Feeds every record (the workload's trailing sentinel drives the
/// closes); `PING` serialises behind the pushes before returning.
fn feed(server: &Server, records: &[(String, u64)]) {
    let mut feeder = Client::connect(server);
    assert_eq!(feeder.roundtrip("NOACK"), "OK");
    let mut payload = String::new();
    for (path, t) in records {
        payload.push_str(&format!("PUSH {path} {t}\n"));
    }
    feeder.stream.write_all(payload.as_bytes()).expect("bulk push");
    assert_eq!(feeder.roundtrip("PING"), "PONG");
    feeder.send("QUIT");
}

/// Feeds and waits until the in-memory store holds the full offline
/// event count (only valid without a retention budget).
fn feed_and_settle(server: &Server, records: &[(String, u64)], expected_events: usize) {
    feed(server, records);
    let needle = format!("events={expected_events} ");
    wait_for_stats(server, |s| s.contains(&needle));
}

#[test]
fn crash_image_replays_the_wal_into_the_acked_stream() {
    let live_dir = tempdir("crash-live");
    let crash_dir = tempdir("crash-image");
    let records = workload(10, 6, 8, &[0, 3]);
    let expected = offline_event_frames(&records);
    assert!(expected.len() >= 2, "the workload produces anomalies: {expected:?}");

    let server = Server::start(config(&live_dir)).expect("server starts");
    feed_and_settle(&server, &records, expected.len());
    let stats = wait_for_stats(&server, |s| s.contains("wal_seq="));
    assert!(stats_field(&stats, "wal_seq").parse::<u64>().expect("number") > 0, "{stats}");

    // The crash image: WAL segments only, no shutdown checkpoint —
    // exactly what `kill -9` would leave.
    snapshot(&live_dir, &crash_dir);
    assert!(!crash_dir.join("checkpoint.json").exists(), "no checkpoint before shutdown");
    let mut killer = Client::connect(&server);
    killer.send("SHUTDOWN");
    server.join().expect("clean shutdown");

    // Restart from the image: the full acked stream comes back from
    // WAL replay alone.
    let revived = Server::start(config(&crash_dir)).expect("server recovers");
    let stats = wait_for_stats(&revived, |s| s.contains(&format!("events={} ", expected.len())));
    assert!(
        stats_field(&stats, "recovered_batches").parse::<u64>().expect("number") > 0,
        "recovery replayed WAL batches: {stats}"
    );
    assert!(
        stats_field(&stats, "recovered_units").parse::<u64>().expect("number") > 0,
        "recovery re-closed timeunits: {stats}"
    );
    let mut client = Client::connect(&revived);
    let (frames, n) = client.query("QUERY 0 9999");
    assert_eq!(n, frames.len());
    assert_eq!(frames, expected, "post-crash QUERY equals the offline replay exactly");

    client.send("SHUTDOWN");
    revived.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&live_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn clean_shutdown_checkpoints_atomically_and_ignores_torn_tmp() {
    let dir = tempdir("clean");
    let records = workload(10, 6, 8, &[1]);
    let expected = offline_event_frames(&records);
    assert!(!expected.is_empty(), "the workload produces anomalies");

    let server = Server::start(config(&dir)).expect("server starts");
    feed_and_settle(&server, &records, expected.len());
    let mut client = Client::connect(&server);
    client.send("SHUTDOWN");
    server.join().expect("clean shutdown");

    let checkpoint = dir.join("checkpoint.json");
    assert!(checkpoint.exists(), "graceful shutdown wrote the checkpoint");
    assert!(!dir.join("checkpoint.tmp").exists(), "the tmp file was renamed away");

    // A torn `.tmp` from a hypothetical crash mid-write must be
    // ignored: only the rename publishes a checkpoint.
    let torn = &std::fs::read(&checkpoint).expect("checkpoint reads")
        [..std::fs::metadata(&checkpoint).expect("metadata").len() as usize / 2];
    std::fs::write(dir.join("checkpoint.tmp"), torn).expect("torn tmp writes");

    let revived = Server::start(config(&dir)).expect("server resumes");
    let stats = wait_for_stats(&revived, |s| s.starts_with("STATS "));
    assert_eq!(
        stats_field(&stats, "recovered_batches"),
        "0",
        "the checkpoint covered the whole WAL — nothing to replay: {stats}"
    );
    let mut client = Client::connect(&revived);
    let (frames, _) = client.query("QUERY 0 9999");
    assert_eq!(frames, expected, "the resumed store equals the offline replay");

    client.send("SHUTDOWN");
    revived.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retention_spills_to_segments_and_serves_history_from_disk() {
    let dir = tempdir("spill");
    let mut config = config(&dir);
    config.retain_units = Some(2);
    let server = Server::start(config).expect("server starts");

    // The burst sits at unit 6 of 12 so its events age well past the
    // two-unit RAM budget and must be answered from segments.
    let records = workload(12, 6, 6, &[0, 3]);
    let expected = offline_event_frames(&records);
    let evicted_expected: Vec<&String> =
        expected.iter().filter(|f| f.contains("unit=6 ")).collect();
    assert!(!evicted_expected.is_empty(), "the burst unit produces anomalies: {expected:?}");

    // All 12 workload units close (the sentinel sits in unit 12); with
    // a 2-unit budget, everything older has been evicted from RAM.
    feed(&server, &records);
    let stats = wait_for_stats(&server, |s| {
        s.contains("last_closed=11 ")
            && stats_field(s, "events_evicted").parse::<u64>().unwrap_or(0) > 0
    });
    assert!(
        stats_field(&stats, "segments").parse::<u64>().expect("number") >= 1,
        "evicted events reached a segment file: {stats}"
    );

    // QUERY spans both tiers: the full offline stream answers, with
    // the evicted burst served from disk.
    let mut client = Client::connect(&server);
    let (frames, _) = client.query("QUERY 0 9999");
    assert_eq!(frames, expected, "QUERY reaches past the RAM budget into segments");

    // SUBSCRIBE FROM 0 resumes at the archive's first spilled unit —
    // not the (much later) RAM horizon — and the catch-up covers both
    // tiers gap-free. No event precedes that unit, so nothing is lost.
    let first_event_unit: u64 = expected
        .iter()
        .filter_map(|f| {
            f.split_whitespace().find_map(|p| p.strip_prefix("unit=")).map(|u| u.parse().unwrap())
        })
        .min()
        .expect("events exist");
    assert_eq!(
        client.roundtrip("SUBSCRIBE FROM 0"),
        format!("OK subscribed from={first_event_unit}"),
        "the resume floor is the archive's first unit, not the RAM horizon"
    );
    let replayed = client.collect_events(expected.len(), Duration::from_secs(10));
    assert_eq!(replayed, expected, "the catch-up replays disk history then RAM");

    client.send("SHUTDOWN");
    server.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
