use crate::tree::{NodeId, Tree};

/// Top-down level-order iterator over all nodes of a [`Tree`].
///
/// Produced by [`Tree::level_order`]. Yields the root first, then every
/// depth-1 node, then every depth-2 node, and so on.
#[derive(Debug, Clone)]
pub struct LevelOrder<'a> {
    levels: &'a [Vec<NodeId>],
    level: usize,
    pos: usize,
}

impl<'a> LevelOrder<'a> {
    pub(crate) fn new(levels: &'a [Vec<NodeId>]) -> Self {
        LevelOrder { levels, level: 0, pos: 0 }
    }
}

impl Iterator for LevelOrder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.level < self.levels.len() {
            if let Some(&id) = self.levels[self.level].get(self.pos) {
                self.pos += 1;
                return Some(id);
            }
            self.level += 1;
            self.pos = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self
            .levels
            .iter()
            .skip(self.level)
            .map(Vec::len)
            .sum::<usize>()
            .saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for LevelOrder<'_> {}

/// Bottom-up level-order iterator over all nodes of a [`Tree`].
///
/// Produced by [`Tree::rev_level_order`]. Yields the deepest level first
/// and the root last — the sweep order used by the paper's `MERGE` pass
/// and `tosplit` marking.
#[derive(Debug, Clone)]
pub struct RevLevelOrder<'a> {
    levels: &'a [Vec<NodeId>],
    /// 1-based level cursor counting down; 0 means exhausted.
    level: usize,
    pos: usize,
}

impl<'a> RevLevelOrder<'a> {
    pub(crate) fn new(levels: &'a [Vec<NodeId>]) -> Self {
        RevLevelOrder { levels, level: levels.len(), pos: 0 }
    }
}

impl Iterator for RevLevelOrder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.level > 0 {
            if let Some(&id) = self.levels[self.level - 1].get(self.pos) {
                self.pos += 1;
                return Some(id);
            }
            self.level -= 1;
            self.pos = 0;
        }
        None
    }
}

/// Depth-first pre-order iterator over a subtree, produced by
/// [`Tree::subtree`]. Yields the subtree root first.
#[derive(Debug, Clone)]
pub struct Subtree<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl<'a> Subtree<'a> {
    pub(crate) fn new(tree: &'a Tree, root: NodeId) -> Self {
        Subtree { tree, stack: vec![root] }
    }
}

impl Iterator for Subtree<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // push children in reverse so the leftmost child pops first
        for &c in self.tree.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Tree {
        let mut t = Tree::new("r");
        t.insert_path(&["a", "b", "c"]);
        t.insert_path(&["a", "d"]);
        t
    }

    #[test]
    fn level_order_is_exact_size() {
        let t = chain();
        let it = t.level_order();
        assert_eq!(it.len(), t.len());
        assert_eq!(it.count(), t.len());
    }

    #[test]
    fn rev_level_order_ends_at_root() {
        let t = chain();
        let v: Vec<_> = t.rev_level_order().collect();
        assert_eq!(*v.last().unwrap(), t.root());
        assert_eq!(t.depth(v[0]), t.max_depth());
    }

    #[test]
    fn subtree_preorder_parent_before_child() {
        let t = chain();
        let a = t.find(&["a"]).unwrap();
        let v: Vec<_> = t.subtree(a).collect();
        for (i, &n) in v.iter().enumerate() {
            if let Some(p) = t.parent(n) {
                if p != t.root() {
                    let pi = v.iter().position(|&x| x == p).unwrap();
                    assert!(pi < i, "parent visited before child");
                }
            }
        }
    }

    #[test]
    fn subtree_of_leaf_is_single() {
        let t = chain();
        let c = t.find(&["a", "b", "c"]).unwrap();
        assert_eq!(t.subtree(c).count(), 1);
    }
}
