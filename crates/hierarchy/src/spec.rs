use serde::{Deserialize, Serialize};

use crate::error::HierarchyError;
use crate::tree::Tree;

/// Fan-out description of one level of a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Label prefix for nodes created at this level (e.g. `"VHO"`).
    pub prefix: String,
    /// Number of children each node of the *previous* level receives.
    pub degree: usize,
}

impl LevelSpec {
    /// Creates a level spec.
    pub fn new(prefix: impl Into<String>, degree: usize) -> Self {
        LevelSpec { prefix: prefix.into(), degree }
    }
}

/// Declarative description of a regular hierarchy: a root plus one
/// [`LevelSpec`] per level below it.
///
/// This mirrors the paper's Table II, which characterises the CCD and SCD
/// hierarchies by their typical per-level degree. [`HierarchySpec::build`]
/// materialises the spec into a concrete [`Tree`].
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::HierarchySpec;
///
/// // The paper's SCD network-path hierarchy: 4 levels with degrees
/// // 2000 / 30 / 6 below the national root (scaled down here).
/// let spec = HierarchySpec::new("National")
///     .level("CO", 20)
///     .level("DSLAM", 30)
///     .level("STB", 6);
/// let tree = spec.build()?;
/// assert_eq!(tree.max_depth(), 3);
/// assert_eq!(tree.nodes_at_depth(1).len(), 20);
/// assert_eq!(tree.nodes_at_depth(2).len(), 20 * 30);
/// # Ok::<(), tiresias_hierarchy::HierarchyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchySpec {
    root_label: String,
    levels: Vec<LevelSpec>,
}

impl HierarchySpec {
    /// Starts a spec with the given root label and no levels.
    pub fn new(root_label: impl Into<String>) -> Self {
        HierarchySpec { root_label: root_label.into(), levels: Vec::new() }
    }

    /// Appends a level with the given label prefix and fan-out.
    #[must_use]
    pub fn level(mut self, prefix: impl Into<String>, degree: usize) -> Self {
        self.levels.push(LevelSpec::new(prefix, degree));
        self
    }

    /// The declared levels, outermost first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// The root label.
    pub fn root_label(&self) -> &str {
        &self.root_label
    }

    /// Depth of the hierarchy this spec describes (number of levels below
    /// the root).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of nodes the built tree will contain.
    pub fn node_count(&self) -> usize {
        let mut total = 1usize;
        let mut level_width = 1usize;
        for l in &self.levels {
            level_width *= l.degree;
            total += level_width;
        }
        total
    }

    /// Number of leaves the built tree will contain.
    pub fn leaf_count(&self) -> usize {
        self.levels.iter().map(|l| l.degree).product()
    }

    /// Materialises the spec into a [`Tree`]. Node labels are
    /// `"{prefix}-{i}"` with `i` counting the siblings under each parent.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::EmptySpec`] if no levels were declared and
    /// [`HierarchyError::ZeroDegree`] if any level has fan-out zero.
    pub fn build(&self) -> Result<Tree, HierarchyError> {
        if self.levels.is_empty() {
            return Err(HierarchyError::EmptySpec);
        }
        for (i, l) in self.levels.iter().enumerate() {
            if l.degree == 0 {
                return Err(HierarchyError::ZeroDegree { level: i + 1 });
            }
        }
        let mut tree = Tree::new(self.root_label.clone());
        let mut frontier = vec![tree.root()];
        for l in &self.levels {
            let mut next = Vec::with_capacity(frontier.len() * l.degree);
            for &parent in &frontier {
                for i in 0..l.degree {
                    next.push(tree.insert_child(parent, &format!("{}-{}", l.prefix, i)));
                }
            }
            frontier = next;
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_regular_tree() {
        let spec = HierarchySpec::new("All").level("A", 3).level("B", 2);
        let t = spec.build().unwrap();
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.nodes_at_depth(1).len(), 3);
        assert_eq!(t.nodes_at_depth(2).len(), 6);
        assert_eq!(t.len(), spec.node_count());
        assert_eq!(t.leaf_count(), spec.leaf_count());
        assert_eq!(t.typical_degree(0), Some(3.0));
        assert_eq!(t.typical_degree(1), Some(2.0));
    }

    #[test]
    fn empty_spec_is_rejected() {
        assert_eq!(HierarchySpec::new("All").build().unwrap_err(), HierarchyError::EmptySpec);
    }

    #[test]
    fn zero_degree_is_rejected() {
        let spec = HierarchySpec::new("All").level("A", 2).level("B", 0);
        assert_eq!(spec.build().unwrap_err(), HierarchyError::ZeroDegree { level: 2 });
    }

    #[test]
    fn labels_follow_prefix_scheme() {
        let spec = HierarchySpec::new("SHO").level("VHO", 2);
        let t = spec.build().unwrap();
        assert!(t.find(&["VHO-0"]).is_some());
        assert!(t.find(&["VHO-1"]).is_some());
        assert!(t.find(&["VHO-2"]).is_none());
    }

    #[test]
    fn node_count_formula_matches() {
        let spec = HierarchySpec::new("r").level("a", 4).level("b", 5).level("c", 2);
        assert_eq!(spec.node_count(), 1 + 4 + 20 + 40);
        assert_eq!(spec.leaf_count(), 40);
        assert_eq!(spec.build().unwrap().len(), spec.node_count());
    }
}
