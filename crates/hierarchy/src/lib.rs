//! Hierarchical category domain for Tiresias.
//!
//! Operational network data (customer-care call records, set-top-box crash
//! logs, trouble tickets, …) is classified against an **additive
//! hierarchy**: every record names a leaf category, and the count of any
//! interior category is the sum of the counts of its children. This crate
//! provides the substrate the rest of the workspace builds on:
//!
//! * [`CategoryPath`] — a `/`-separated path of labels naming a node,
//! * [`Tree`] / [`NodeId`] — an arena-allocated hierarchy with O(1) parent,
//!   children, and depth lookups plus level-order traversals in both
//!   directions (the paper's algorithms are phrased as bottom-up and
//!   top-down level-order sweeps),
//! * [`HierarchySpec`] — a declarative per-level fan-out description used
//!   to synthesise hierarchies shaped like the paper's Table II,
//! * [`WeightMap`] — dense per-node weights with additive (bottom-up)
//!   aggregation.
//!
//! # Example
//!
//! ```
//! use tiresias_hierarchy::{CategoryPath, Tree};
//!
//! let mut tree = Tree::new("All");
//! let dslam = tree.insert_path(&["VHO-3", "IO-1", "CO-7", "DSLAM-2"]);
//! assert_eq!(tree.depth(dslam), 4);
//! assert_eq!(
//!     tree.path_of(dslam),
//!     CategoryPath::from(["VHO-3", "IO-1", "CO-7", "DSLAM-2"].as_slice())
//! );
//! assert_eq!(tree.len(), 5); // root + four path components
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fx;
mod path;
mod render;
mod spec;
mod traversal;
mod tree;
mod weights;

pub use error::HierarchyError;
pub use fx::{FxBuildHasher, FxHashMap, FxHasher};
pub use path::{first_segment, first_segment_hash, CategoryPath};
pub use render::{render_ascii, render_dot};
pub use spec::{HierarchySpec, LevelSpec};
pub use traversal::{LevelOrder, RevLevelOrder, Subtree};
pub use tree::{LabelId, MovedNode, NodeId, Tree, TreeSurgery};
pub use weights::WeightMap;
