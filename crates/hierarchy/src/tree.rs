use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::path::CategoryPath;
use crate::traversal::{LevelOrder, RevLevelOrder, Subtree};

/// Identifier of a node in a [`Tree`].
///
/// Node ids are dense indices, so per-node side tables (weights, heavy
/// hitter flags, time series, …) can be plain vectors indexed by
/// [`NodeId::index`]. Ids are only meaningful for the tree that issued
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The dense index of this node, suitable for vector side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("tree larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeData {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: usize,
}

/// An arena-allocated additive hierarchy.
///
/// The tree always has a root (depth 0). Nodes are created by
/// [`Tree::insert_path`] and never removed; all structural queries are
/// O(1). In the paper's terminology this is the *classification tree* of
/// Fig. 3(c): each category of the operational data maps bijectively to a
/// node of this tree.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::Tree;
///
/// let mut t = Tree::new("SHO");
/// let co = t.insert_path(&["VHO-1", "IO-2", "CO-9"]);
/// assert_eq!(t.label(co), "CO-9");
/// assert_eq!(t.depth(co), 3);
/// assert_eq!(t.children(t.root()).len(), 1);
/// ```
///
/// Serialisation uses a compact representation holding only the node
/// arena; the path-resolution index and level grouping are rebuilt on
/// deserialisation (they are pure functions of the arena), keeping the
/// format free of non-string map keys so JSON works.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "TreeRepr", into = "TreeRepr")]
pub struct Tree {
    nodes: Vec<NodeData>,
    /// (parent, label) → child lookup for path resolution.
    child_index: HashMap<(NodeId, String), NodeId>,
    /// Node ids grouped by depth; `by_depth[0] == [root]`.
    by_depth: Vec<Vec<NodeId>>,
}

/// Serialised form of a [`Tree`]: the node arena only.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeRepr {
    nodes: Vec<NodeData>,
}

impl From<Tree> for TreeRepr {
    fn from(t: Tree) -> Self {
        TreeRepr { nodes: t.nodes }
    }
}

impl From<TreeRepr> for Tree {
    fn from(r: TreeRepr) -> Self {
        let mut child_index = HashMap::new();
        let mut by_depth: Vec<Vec<NodeId>> = Vec::new();
        for (i, n) in r.nodes.iter().enumerate() {
            let id = NodeId::from_index(i);
            if let Some(p) = n.parent {
                child_index.insert((p, n.label.clone()), id);
            }
            if by_depth.len() <= n.depth {
                by_depth.resize_with(n.depth + 1, Vec::new);
            }
            by_depth[n.depth].push(id);
        }
        Tree { nodes: r.nodes, child_index, by_depth }
    }
}

impl Tree {
    /// Creates a tree containing only a root with the given label.
    pub fn new(root_label: impl Into<String>) -> Self {
        Tree {
            nodes: vec![NodeData {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
            child_index: HashMap::new(),
            by_depth: vec![vec![NodeId(0)]],
        }
    }

    /// The root node (depth 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The deepest level present; 0 for a root-only tree.
    pub fn max_depth(&self) -> usize {
        self.by_depth.len() - 1
    }

    /// Inserts (or finds) the node named by `path`, creating all missing
    /// intermediate nodes, and returns its id.
    pub fn insert_path<S: AsRef<str>>(&mut self, path: &[S]) -> NodeId {
        let mut cur = self.root();
        for label in path {
            cur = self.insert_child(cur, label.as_ref());
        }
        cur
    }

    /// Inserts (or finds) the node named by a [`CategoryPath`].
    pub fn insert_category(&mut self, path: &CategoryPath) -> NodeId {
        let mut cur = self.root();
        for label in path.iter() {
            cur = self.insert_child(cur, label);
        }
        cur
    }

    /// Inserts (or finds) a direct child of `parent` with the given label.
    pub fn insert_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        if let Some(&c) = self.child_index.get(&(parent, label.to_string())) {
            return c;
        }
        let depth = self.nodes[parent.index()].depth + 1;
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            label: label.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        self.child_index.insert((parent, label.to_string()), id);
        if self.by_depth.len() <= depth {
            self.by_depth.push(Vec::new());
        }
        self.by_depth[depth].push(id);
        id
    }

    /// Resolves a path to a node id without creating nodes.
    pub fn find<S: AsRef<str>>(&self, path: &[S]) -> Option<NodeId> {
        let mut cur = self.root();
        for label in path {
            cur = *self.child_index.get(&(cur, label.as_ref().to_string()))?;
        }
        Some(cur)
    }

    /// Resolves a [`CategoryPath`] to a node id without creating nodes.
    pub fn find_category(&self, path: &CategoryPath) -> Option<NodeId> {
        self.find(path.labels())
    }

    /// The label of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different tree and is out of range.
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// The parent of a node, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The children of a node, in insertion order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// The depth of a node; the root has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        self.nodes[id.index()].depth
    }

    /// `true` iff the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// All node ids at the given depth (level); empty if deeper than the
    /// tree.
    pub fn nodes_at_depth(&self, depth: usize) -> &[NodeId] {
        self.by_depth.get(depth).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Reconstructs the [`CategoryPath`] of a node (root → empty path).
    pub fn path_of(&self, id: NodeId) -> CategoryPath {
        let mut labels = Vec::with_capacity(self.depth(id));
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            labels.push(self.label(cur).to_string());
            cur = p;
        }
        labels.reverse();
        CategoryPath::new(labels)
    }

    /// `true` iff `a` equals `b` or is an ancestor of `b`.
    pub fn is_ancestor_or_equal(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Iterates over all node ids in **top-down level order** (root first,
    /// then depth 1 left-to-right, …).
    pub fn level_order(&self) -> LevelOrder<'_> {
        LevelOrder::new(&self.by_depth)
    }

    /// Iterates over all node ids in **bottom-up level order** (deepest
    /// level first, root last). This is the traversal order of the paper's
    /// `Update-Ishh-and-Weight` post-pass and `MERGE` sweep.
    pub fn rev_level_order(&self) -> RevLevelOrder<'_> {
        RevLevelOrder::new(&self.by_depth)
    }

    /// Iterates over the subtree rooted at `id` (including `id` itself) in
    /// depth-first pre-order.
    pub fn subtree(&self, id: NodeId) -> Subtree<'_> {
        Subtree::new(self, id)
    }

    /// Iterates over all node ids in arena (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.iter().filter(|&n| self.is_leaf(n)).count()
    }

    /// Mean fan-out of the internal nodes at `depth` (the paper's "typical
    /// degree at the k-th level", Table II). `None` if the level has no
    /// internal nodes.
    pub fn typical_degree(&self, depth: usize) -> Option<f64> {
        let nodes = self.nodes_at_depth(depth);
        let internal: Vec<_> = nodes.iter().filter(|&&n| !self.is_leaf(n)).collect();
        if internal.is_empty() {
            return None;
        }
        let total: usize = internal.iter().map(|&&n| self.children(n).len()).sum();
        Some(total as f64 / internal.len() as f64)
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tree({} nodes, depth {}, {} leaves)",
            self.len(),
            self.max_depth(),
            self.leaf_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        let mut t = Tree::new("All");
        t.insert_path(&["TV", "No Service", "No Pic"]);
        t.insert_path(&["TV", "No Service", "No Sound"]);
        t.insert_path(&["TV", "Pixelation"]);
        t.insert_path(&["Internet", "Slow"]);
        t
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = Tree::new("All");
        let a = t.insert_path(&["x", "y"]);
        let b = t.insert_path(&["x", "y"]);
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn structure_queries() {
        let t = sample();
        let tv = t.find(&["TV"]).unwrap();
        assert_eq!(t.depth(tv), 1);
        assert_eq!(t.children(tv).len(), 2);
        assert!(!t.is_leaf(tv));
        let pix = t.find(&["TV", "Pixelation"]).unwrap();
        assert!(t.is_leaf(pix));
        assert_eq!(t.parent(pix), Some(tv));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn find_missing_returns_none() {
        let t = sample();
        assert!(t.find(&["TV", "Nope"]).is_none());
        assert!(t.find(&["Phone"]).is_none());
    }

    #[test]
    fn path_round_trip() {
        let mut t = Tree::new("All");
        let p: CategoryPath = "a/b/c".parse().unwrap();
        let id = t.insert_category(&p);
        assert_eq!(t.path_of(id), p);
        assert_eq!(t.find_category(&p), Some(id));
        assert_eq!(t.path_of(t.root()), CategoryPath::root());
    }

    #[test]
    fn level_order_visits_every_node_once_by_depth() {
        let t = sample();
        let order: Vec<_> = t.level_order().collect();
        assert_eq!(order.len(), t.len());
        for w in order.windows(2) {
            assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
        let rev: Vec<_> = t.rev_level_order().collect();
        assert_eq!(rev.len(), t.len());
        for w in rev.windows(2) {
            assert!(t.depth(w[0]) >= t.depth(w[1]));
        }
        assert_eq!(rev.last(), Some(&t.root()));
    }

    #[test]
    fn subtree_iterates_descendants() {
        let t = sample();
        let tv = t.find(&["TV"]).unwrap();
        let sub: Vec<_> = t.subtree(tv).collect();
        // TV, No Service, No Pic, No Sound, Pixelation
        assert_eq!(sub.len(), 5);
        assert_eq!(sub[0], tv);
        for n in &sub[1..] {
            assert!(t.is_ancestor_or_equal(tv, *n));
        }
    }

    #[test]
    fn ancestor_relation() {
        let t = sample();
        let tv = t.find(&["TV"]).unwrap();
        let pic = t.find(&["TV", "No Service", "No Pic"]).unwrap();
        let net = t.find(&["Internet"]).unwrap();
        assert!(t.is_ancestor_or_equal(t.root(), pic));
        assert!(t.is_ancestor_or_equal(tv, pic));
        assert!(t.is_ancestor_or_equal(pic, pic));
        assert!(!t.is_ancestor_or_equal(pic, tv));
        assert!(!t.is_ancestor_or_equal(net, pic));
    }

    #[test]
    fn typical_degree_matches_fanout() {
        let t = sample();
        // root has 2 children (TV, Internet)
        assert_eq!(t.typical_degree(0), Some(2.0));
        // depth-1 internal nodes: TV (2 children), Internet (1 child)
        assert_eq!(t.typical_degree(1), Some(1.5));
        // deepest level has no internal nodes
        assert_eq!(t.typical_degree(3), None);
    }

    #[test]
    fn nodes_at_depth_groups_levels() {
        let t = sample();
        assert_eq!(t.nodes_at_depth(0), &[t.root()]);
        assert_eq!(t.nodes_at_depth(1).len(), 2);
        assert_eq!(t.nodes_at_depth(99), &[] as &[NodeId]);
    }

    #[test]
    fn serde_round_trip_rebuilds_indexes() {
        let t = sample();
        let json = serde_json::to_string(&t).expect("serialises");
        let r: Tree = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(r.len(), t.len());
        assert_eq!(r.max_depth(), t.max_depth());
        // The rebuilt index resolves paths and the level grouping holds.
        let pix = r.find(&["TV", "Pixelation"]).unwrap();
        assert_eq!(r.label(pix), "Pixelation");
        assert_eq!(r.nodes_at_depth(1).len(), t.nodes_at_depth(1).len());
    }

    #[test]
    fn leaf_count() {
        let t = sample();
        // No Pic, No Sound, Pixelation, Slow
        assert_eq!(t.leaf_count(), 4);
    }
}
