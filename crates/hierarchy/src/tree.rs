use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fx::FxBuildHasher;
use crate::path::CategoryPath;
use crate::traversal::{LevelOrder, RevLevelOrder, Subtree};

/// Identifier of a node in a [`Tree`].
///
/// Node ids are dense indices, so per-node side tables (weights, heavy
/// hitter flags, time series, …) can be plain vectors indexed by
/// [`NodeId::index`]. Ids are only meaningful for the tree that issued
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The dense index of this node, suitable for vector side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("tree larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an interned label string in a [`Tree`].
///
/// Many nodes share the same label ("DSLAM-2" appears under every CO),
/// so labels are stored once and nodes refer to them by id. Resolving a
/// `&str` path against a warm tree therefore needs no allocation: each
/// segment maps to a `LabelId`, and the `(parent, label)` child lookup
/// is an integer-pair probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(u32);

impl LabelId {
    /// The dense index of this label in the tree's interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        LabelId(u32::try_from(index).expect("more than u32::MAX distinct labels"))
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: LabelId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: usize,
}

/// An arena-allocated additive hierarchy.
///
/// The tree always has a root (depth 0). Nodes are created by
/// [`Tree::insert_path`] (or the allocation-free [`Tree::insert_str`])
/// and never removed; all structural queries are O(1). In the paper's
/// terminology this is the *classification tree* of Fig. 3(c): each
/// category of the operational data maps bijectively to a node of this
/// tree.
///
/// Internally, label strings are interned once as `Box<str>` and nodes
/// store [`LabelId`]s; the `(parent, label)` child index is keyed by
/// `(NodeId, LabelId)` under an Fx-style hasher (see [`crate::fx`]).
/// Resolving an existing path — the ingest hot path of the detector —
/// performs no heap allocation.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::Tree;
///
/// let mut t = Tree::new("SHO");
/// let co = t.insert_path(&["VHO-1", "IO-2", "CO-9"]);
/// assert_eq!(t.label(co), "CO-9");
/// assert_eq!(t.depth(co), 3);
/// assert_eq!(t.children(t.root()).len(), 1);
/// // The `/`-separated fast path resolves the same node, allocation-free.
/// assert_eq!(t.resolve_str("VHO-1/IO-2/CO-9"), Some(co));
/// ```
///
/// Serialisation uses a compact representation holding only the node
/// arena (label text + parent id per node); the interner, child index
/// and level grouping are rebuilt on deserialisation (they are pure
/// functions of the arena), keeping the format free of non-string map
/// keys so JSON works. Malformed input (no root, dangling or
/// out-of-order parent ids) is rejected as a deserialisation error.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "TreeRepr", into = "TreeRepr")]
pub struct Tree {
    nodes: Vec<NodeData>,
    /// Interned label text, indexed by [`LabelId::index`].
    labels: Vec<Box<str>>,
    /// label text → id for zero-allocation `&str` lookups.
    label_ids: HashMap<Box<str>, LabelId, FxBuildHasher>,
    /// (parent, label) → child lookup for path resolution.
    child_index: HashMap<(NodeId, LabelId), NodeId, FxBuildHasher>,
    /// Full-path memo for [`Tree::insert_str`]: collapses a warm
    /// resolve to a single hash probe. Keys are the literal spellings
    /// seen (so `"a/b"` and `"a//b"` are distinct entries for the same
    /// node); entries are never invalidated because nodes are never
    /// removed or renamed. Rebuilt lazily after deserialisation.
    path_memo: HashMap<Box<str>, NodeId, FxBuildHasher>,
    /// Node ids grouped by depth; `by_depth[0] == [root]`.
    by_depth: Vec<Vec<NodeId>>,
}

/// One node of the serialised arena: label text plus parent id.
/// Children lists, depths, the interner and the child index are all
/// derivable, so they are not stored.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReprNode {
    label: String,
    parent: Option<NodeId>,
}

/// One node of an extracted top-level subtree (see
/// [`Tree::extract_top_subtrees`]), in source-arena order.
#[derive(Debug, Clone)]
pub struct MovedNode {
    /// The node's id in the source tree *before* extraction — the index
    /// for gathering per-node side-table state that moves with it.
    pub old_id: NodeId,
    /// The node's label text.
    pub label: String,
    /// Index into the moved list of this node's parent; `None` for a
    /// depth-1 subtree root, which re-parents onto the adopting tree's
    /// root.
    pub parent: Option<usize>,
}

/// The outcome of [`Tree::extract_top_subtrees`]: which nodes left, and
/// where every surviving node's id moved during compaction.
#[derive(Debug, Clone, Default)]
pub struct TreeSurgery {
    /// Extracted nodes in source-arena order (parents precede
    /// children), ready for [`Tree::adopt_top_subtrees`].
    pub moved: Vec<MovedNode>,
    /// Old arena index → compacted id for surviving nodes (`None` for
    /// moved nodes). Identity when nothing was selected.
    pub old_to_new: Vec<Option<NodeId>>,
}

impl TreeSurgery {
    /// `true` iff the selection matched nothing (the tree is untouched
    /// and `old_to_new` is the identity).
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty()
    }
}

/// Serialised form of a [`Tree`]: the node arena only.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeRepr {
    nodes: Vec<ReprNode>,
}

impl From<Tree> for TreeRepr {
    fn from(t: Tree) -> Self {
        TreeRepr {
            nodes: t
                .nodes
                .iter()
                .map(|n| ReprNode {
                    label: t.labels[n.label.index()].to_string(),
                    parent: n.parent,
                })
                .collect(),
        }
    }
}

impl TryFrom<TreeRepr> for Tree {
    type Error = String;

    fn try_from(r: TreeRepr) -> Result<Self, String> {
        let mut nodes = r.nodes.into_iter();
        let Some(root) = nodes.next() else {
            return Err("serialised tree has no root node".to_string());
        };
        let mut t = Tree::new(root.label);
        // Arena order puts parents before children, so a single pass
        // rebuilds every derived structure — enforced here so corrupt
        // input surfaces as an error instead of a panic.
        for (offset, n) in nodes.enumerate() {
            let index = offset + 1;
            let Some(parent) = n.parent else {
                return Err(format!("serialised node {index} has no parent"));
            };
            if parent.index() >= t.len() {
                return Err(format!(
                    "serialised node {index} names parent {} outside the preceding arena",
                    parent.index()
                ));
            }
            let id = t.insert_child(parent, &n.label);
            if id.index() != index {
                return Err(format!(
                    "serialised node {index} duplicates sibling label `{}` under parent {}",
                    n.label,
                    parent.index()
                ));
            }
        }
        Ok(t)
    }
}

impl Tree {
    /// Creates a tree containing only a root with the given label.
    pub fn new(root_label: impl Into<String>) -> Self {
        let root_label: Box<str> = root_label.into().into_boxed_str();
        let mut label_ids: HashMap<Box<str>, LabelId, FxBuildHasher> = HashMap::default();
        label_ids.insert(root_label.clone(), LabelId(0));
        Tree {
            nodes: vec![NodeData {
                label: LabelId(0),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
            labels: vec![root_label],
            label_ids,
            child_index: HashMap::default(),
            path_memo: HashMap::default(),
            by_depth: vec![vec![NodeId(0)]],
        }
    }

    /// The root node (depth 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The deepest level present; 0 for a root-only tree.
    pub fn max_depth(&self) -> usize {
        self.by_depth.len() - 1
    }

    /// Number of distinct interned labels (including the root's).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The id of an already-interned label, without allocating.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.label_ids.get(label).copied()
    }

    /// The text of an interned label.
    pub fn label_text(&self, id: LabelId) -> &str {
        &self.labels[id.index()]
    }

    /// Interns a label, allocating only on first sighting.
    fn intern(&mut self, label: &str) -> LabelId {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = LabelId::from_index(self.labels.len());
        let boxed: Box<str> = label.into();
        self.labels.push(boxed.clone());
        self.label_ids.insert(boxed, id);
        id
    }

    /// Appends a new node under `parent` with interned label `lid`.
    fn add_node(&mut self, parent: NodeId, lid: LabelId) -> NodeId {
        let depth = self.nodes[parent.index()].depth + 1;
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData { label: lid, parent: Some(parent), children: Vec::new(), depth });
        self.nodes[parent.index()].children.push(id);
        self.child_index.insert((parent, lid), id);
        if self.by_depth.len() <= depth {
            self.by_depth.push(Vec::new());
        }
        self.by_depth[depth].push(id);
        id
    }

    /// Inserts (or finds) the node named by `path`, creating all missing
    /// intermediate nodes, and returns its id.
    pub fn insert_path<S: AsRef<str>>(&mut self, path: &[S]) -> NodeId {
        let mut cur = self.root();
        for label in path {
            cur = self.insert_child(cur, label.as_ref());
        }
        cur
    }

    /// Inserts (or finds) the node named by a [`CategoryPath`].
    pub fn insert_category(&mut self, path: &CategoryPath) -> NodeId {
        let mut cur = self.root();
        for label in path.iter() {
            cur = self.insert_child(cur, label);
        }
        cur
    }

    /// Whether the full-path memo may take one more entry. Spellings
    /// are memoised only up to a multiple of the node count, so a feed
    /// that decorates paths with ever-new spellings ("a/b", "a//b",
    /// "a/b/", …) cannot grow memory beyond O(tree): past the cap new
    /// spellings just take the per-segment walk.
    fn memo_has_room(&self) -> bool {
        self.path_memo.len() < self.nodes.len().saturating_mul(4).max(1024)
    }

    /// Inserts (or finds) the node named by a `/`-separated path,
    /// skipping empty segments exactly like [`CategoryPath`] parsing —
    /// the zero-allocation ingest fast path.
    ///
    /// A path spelling seen before costs a single hash probe (the
    /// full-path memo); a new spelling walks the per-segment interner
    /// and child index, then memoises (bounded — see
    /// [`Tree::memo_has_room`]). Only a never-before-seen spelling
    /// allocates (its memo key).
    ///
    /// Like the rest of the tree's indexes, the memo hashes with the
    /// non-DoS-resistant Fx hasher; feeds of fully adversarial
    /// category strings should be sanitised upstream.
    pub fn insert_str(&mut self, path: &str) -> NodeId {
        if let Some(&id) = self.path_memo.get(path) {
            return id;
        }
        let mut cur = self.root();
        for label in path.split('/') {
            if label.is_empty() {
                continue;
            }
            cur = self.insert_child(cur, label);
        }
        if self.memo_has_room() {
            self.path_memo.insert(path.into(), cur);
        }
        cur
    }

    /// Resolves a `/`-separated path to a node id without creating
    /// nodes and without allocating. Empty segments are skipped, so
    /// `"a//b/"` resolves like `"a/b"`. Spellings already memoised by
    /// [`Tree::insert_str`] resolve with a single hash probe.
    pub fn resolve_str(&self, path: &str) -> Option<NodeId> {
        if let Some(&id) = self.path_memo.get(path) {
            return Some(id);
        }
        let mut cur = self.root();
        for label in path.split('/') {
            if label.is_empty() {
                continue;
            }
            let lid = self.label_id(label)?;
            cur = *self.child_index.get(&(cur, lid))?;
        }
        Some(cur)
    }

    /// Inserts (or finds) a direct child of `parent` with the given label.
    pub fn insert_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        if let Some(lid) = self.label_id(label) {
            // Hit path: no allocation.
            if let Some(&c) = self.child_index.get(&(parent, lid)) {
                return c;
            }
            return self.add_node(parent, lid);
        }
        let lid = self.intern(label);
        self.add_node(parent, lid)
    }

    /// Resolves a path to a node id without creating nodes.
    pub fn find<S: AsRef<str>>(&self, path: &[S]) -> Option<NodeId> {
        let mut cur = self.root();
        for label in path {
            let lid = self.label_id(label.as_ref())?;
            cur = *self.child_index.get(&(cur, lid))?;
        }
        Some(cur)
    }

    /// Resolves a [`CategoryPath`] to a node id without creating nodes.
    pub fn find_category(&self, path: &CategoryPath) -> Option<NodeId> {
        self.find(path.labels())
    }

    /// The label of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different tree and is out of range.
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[self.nodes[id.index()].label.index()]
    }

    /// The parent of a node, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The children of a node, in insertion order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// The depth of a node; the root has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        self.nodes[id.index()].depth
    }

    /// `true` iff the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// All node ids at the given depth (level); empty if deeper than the
    /// tree.
    pub fn nodes_at_depth(&self, depth: usize) -> &[NodeId] {
        self.by_depth.get(depth).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Reconstructs the [`CategoryPath`] of a node (root → empty path).
    pub fn path_of(&self, id: NodeId) -> CategoryPath {
        let mut labels = Vec::with_capacity(self.depth(id));
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            labels.push(self.label(cur).to_string());
            cur = p;
        }
        labels.reverse();
        CategoryPath::new(labels)
    }

    /// `true` iff `a` equals `b` or is an ancestor of `b`.
    pub fn is_ancestor_or_equal(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Iterates over all node ids in **top-down level order** (root first,
    /// then depth 1 left-to-right, …).
    pub fn level_order(&self) -> LevelOrder<'_> {
        LevelOrder::new(&self.by_depth)
    }

    /// Iterates over all node ids in **bottom-up level order** (deepest
    /// level first, root last). This is the traversal order of the paper's
    /// `Update-Ishh-and-Weight` post-pass and `MERGE` sweep.
    pub fn rev_level_order(&self) -> RevLevelOrder<'_> {
        RevLevelOrder::new(&self.by_depth)
    }

    /// Iterates over the subtree rooted at `id` (including `id` itself) in
    /// depth-first pre-order.
    pub fn subtree(&self, id: NodeId) -> Subtree<'_> {
        Subtree::new(self, id)
    }

    /// Iterates over all node ids in arena (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.iter().filter(|&n| self.is_leaf(n)).count()
    }

    /// Removes every depth-1 subtree whose root label satisfies
    /// `select`, compacting the arena, and returns the extracted nodes
    /// plus the old→new id map for the survivors.
    ///
    /// This is the structural half of moving a top-level subtree
    /// between shard detectors: the caller gathers per-node side-table
    /// state at the returned `old_id`s, remaps its surviving state
    /// through `old_to_new`, and feeds the moved nodes to
    /// [`Tree::adopt_top_subtrees`] on the receiving tree.
    ///
    /// Compaction preserves the arena (insertion) order of surviving
    /// nodes — and therefore every traversal order — exactly as if the
    /// moved subtrees had never been inserted. Interned labels are kept
    /// even when their last node leaves (harmless: the serialised form
    /// stores only the node arena, and ids of surviving labels are
    /// unaffected by unused entries). The path memo is invalidated and
    /// rebuilt lazily, like after deserialisation.
    pub fn extract_top_subtrees(&mut self, mut select: impl FnMut(&str) -> bool) -> TreeSurgery {
        let selected: Vec<NodeId> =
            self.children(self.root()).iter().copied().filter(|&c| select(self.label(c))).collect();
        if selected.is_empty() {
            return TreeSurgery {
                moved: Vec::new(),
                old_to_new: (0..self.len()).map(|i| Some(NodeId::from_index(i))).collect(),
            };
        }
        // Classify every node in arena order: a node moves iff its
        // parent moves (seeded by the selected depth-1 roots).
        let mut moved: Vec<MovedNode> = Vec::new();
        let mut moved_slot: Vec<Option<usize>> = vec![None; self.len()];
        let mut survivors: Vec<NodeId> = Vec::new();
        for i in 1..self.len() {
            let id = NodeId::from_index(i);
            let parent = self.nodes[i].parent.expect("non-root node has a parent");
            let parent_slot = moved_slot[parent.index()];
            if parent_slot.is_some() || selected.contains(&id) {
                moved_slot[i] = Some(moved.len());
                moved.push(MovedNode {
                    old_id: id,
                    label: self.label(id).to_string(),
                    parent: parent_slot,
                });
            } else {
                survivors.push(id);
            }
        }
        // Rebuild the arena from the survivors, preserving their order
        // (and hence by-depth grouping and every traversal order).
        let mut compact = Tree::new(self.label(self.root()).to_string());
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; self.len()];
        old_to_new[0] = Some(compact.root());
        for id in survivors {
            let parent = self.nodes[id.index()].parent.expect("non-root node has a parent");
            let new_parent = old_to_new[parent.index()].expect("parents precede children");
            old_to_new[id.index()] = Some(compact.insert_child(new_parent, self.label(id)));
        }
        *self = compact;
        TreeSurgery { moved, old_to_new }
    }

    /// Grafts subtrees extracted by [`Tree::extract_top_subtrees`]
    /// under this tree's root, returning the new id of each moved node
    /// (aligned with `moved`). Nodes append to the arena in their
    /// original relative order, so within-subtree traversal order is
    /// preserved.
    ///
    /// # Panics
    ///
    /// Panics if a moved depth-1 label already exists under this root —
    /// adopting a subtree the tree already has would silently merge two
    /// detectors' state.
    pub fn adopt_top_subtrees(&mut self, moved: &[MovedNode]) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = Vec::with_capacity(moved.len());
        for m in moved {
            let parent = match m.parent {
                Some(slot) => ids[slot],
                None => self.root(),
            };
            let expect = self.len();
            let id = self.insert_child(parent, &m.label);
            assert_eq!(
                id.index(),
                expect,
                "adopted subtree node `{}` already present under its parent",
                m.label
            );
            ids.push(id);
        }
        ids
    }

    /// Mean fan-out of the internal nodes at `depth` (the paper's "typical
    /// degree at the k-th level", Table II). `None` if the level has no
    /// internal nodes.
    pub fn typical_degree(&self, depth: usize) -> Option<f64> {
        let nodes = self.nodes_at_depth(depth);
        let internal: Vec<_> = nodes.iter().filter(|&&n| !self.is_leaf(n)).collect();
        if internal.is_empty() {
            return None;
        }
        let total: usize = internal.iter().map(|&&n| self.children(n).len()).sum();
        Some(total as f64 / internal.len() as f64)
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tree({} nodes, depth {}, {} leaves)",
            self.len(),
            self.max_depth(),
            self.leaf_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        let mut t = Tree::new("All");
        t.insert_path(&["TV", "No Service", "No Pic"]);
        t.insert_path(&["TV", "No Service", "No Sound"]);
        t.insert_path(&["TV", "Pixelation"]);
        t.insert_path(&["Internet", "Slow"]);
        t
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = Tree::new("All");
        let a = t.insert_path(&["x", "y"]);
        let b = t.insert_path(&["x", "y"]);
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn structure_queries() {
        let t = sample();
        let tv = t.find(&["TV"]).unwrap();
        assert_eq!(t.depth(tv), 1);
        assert_eq!(t.children(tv).len(), 2);
        assert!(!t.is_leaf(tv));
        let pix = t.find(&["TV", "Pixelation"]).unwrap();
        assert!(t.is_leaf(pix));
        assert_eq!(t.parent(pix), Some(tv));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn find_missing_returns_none() {
        let t = sample();
        assert!(t.find(&["TV", "Nope"]).is_none());
        assert!(t.find(&["Phone"]).is_none());
    }

    #[test]
    fn path_round_trip() {
        let mut t = Tree::new("All");
        let p: CategoryPath = "a/b/c".parse().unwrap();
        let id = t.insert_category(&p);
        assert_eq!(t.path_of(id), p);
        assert_eq!(t.find_category(&p), Some(id));
        assert_eq!(t.path_of(t.root()), CategoryPath::root());
    }

    #[test]
    fn str_fast_paths_agree_with_path_apis() {
        let mut t = sample();
        let a = t.insert_str("TV/No Service/No Pic");
        assert_eq!(t.find(&["TV", "No Service", "No Pic"]), Some(a));
        assert_eq!(t.resolve_str("TV/No Service/No Pic"), Some(a));
        // Empty segments are skipped like CategoryPath parsing.
        assert_eq!(t.insert_str("/TV//Pixelation/"), t.find(&["TV", "Pixelation"]).unwrap());
        assert_eq!(t.resolve_str("//"), Some(t.root()));
        assert_eq!(t.resolve_str("TV/Missing"), None);
        // New nodes via the fast path are indistinguishable.
        let len_before = t.len();
        let b = t.insert_str("Phone/Dead Line");
        assert_eq!(t.len(), len_before + 2);
        assert_eq!(t.path_of(b).to_string(), "Phone/Dead Line");
        assert_eq!(t.resolve_str("Phone/Dead Line"), Some(b));
    }

    #[test]
    fn path_memo_growth_is_bounded_by_tree_size() {
        let mut t = Tree::new("root");
        let leaf = t.insert_path(&["a", "b"]);
        // Endless distinct spellings of the same node must not grow
        // memory without bound: past the cap they still resolve
        // correctly via the segment walk.
        for i in 0..10_000 {
            let spelling = format!("a{}b", "/".repeat(i + 1));
            assert_eq!(t.insert_str(&spelling), leaf, "spelling {i}");
        }
        assert!(t.path_memo.len() <= t.len() * 4 + 1024);
        assert_eq!(t.len(), 3, "no phantom nodes created");
    }

    #[test]
    fn labels_are_interned_once() {
        let mut t = Tree::new("root");
        // The same leaf label under many parents shares one LabelId.
        for i in 0..50 {
            t.insert_path(&[format!("co-{i}"), "dslam".to_string()]);
        }
        assert_eq!(t.len(), 101);
        // root + 50 COs + 1 shared "dslam".
        assert_eq!(t.label_count(), 52);
        let lid = t.label_id("dslam").unwrap();
        assert_eq!(t.label_text(lid), "dslam");
    }

    #[test]
    fn level_order_visits_every_node_once_by_depth() {
        let t = sample();
        let order: Vec<_> = t.level_order().collect();
        assert_eq!(order.len(), t.len());
        for w in order.windows(2) {
            assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
        let rev: Vec<_> = t.rev_level_order().collect();
        assert_eq!(rev.len(), t.len());
        for w in rev.windows(2) {
            assert!(t.depth(w[0]) >= t.depth(w[1]));
        }
        assert_eq!(rev.last(), Some(&t.root()));
    }

    #[test]
    fn subtree_iterates_descendants() {
        let t = sample();
        let tv = t.find(&["TV"]).unwrap();
        let sub: Vec<_> = t.subtree(tv).collect();
        // TV, No Service, No Pic, No Sound, Pixelation
        assert_eq!(sub.len(), 5);
        assert_eq!(sub[0], tv);
        for n in &sub[1..] {
            assert!(t.is_ancestor_or_equal(tv, *n));
        }
    }

    #[test]
    fn ancestor_relation() {
        let t = sample();
        let tv = t.find(&["TV"]).unwrap();
        let pic = t.find(&["TV", "No Service", "No Pic"]).unwrap();
        let net = t.find(&["Internet"]).unwrap();
        assert!(t.is_ancestor_or_equal(t.root(), pic));
        assert!(t.is_ancestor_or_equal(tv, pic));
        assert!(t.is_ancestor_or_equal(pic, pic));
        assert!(!t.is_ancestor_or_equal(pic, tv));
        assert!(!t.is_ancestor_or_equal(net, pic));
    }

    #[test]
    fn typical_degree_matches_fanout() {
        let t = sample();
        // root has 2 children (TV, Internet)
        assert_eq!(t.typical_degree(0), Some(2.0));
        // depth-1 internal nodes: TV (2 children), Internet (1 child)
        assert_eq!(t.typical_degree(1), Some(1.5));
        // deepest level has no internal nodes
        assert_eq!(t.typical_degree(3), None);
    }

    #[test]
    fn nodes_at_depth_groups_levels() {
        let t = sample();
        assert_eq!(t.nodes_at_depth(0), &[t.root()]);
        assert_eq!(t.nodes_at_depth(1).len(), 2);
        assert_eq!(t.nodes_at_depth(99), &[] as &[NodeId]);
    }

    #[test]
    fn serde_round_trip_rebuilds_indexes() {
        let t = sample();
        let json = serde_json::to_string(&t).expect("serialises");
        let r: Tree = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(r.len(), t.len());
        assert_eq!(r.max_depth(), t.max_depth());
        // The rebuilt index resolves paths and the level grouping holds.
        let pix = r.find(&["TV", "Pixelation"]).unwrap();
        assert_eq!(r.label(pix), "Pixelation");
        assert_eq!(r.nodes_at_depth(1).len(), t.nodes_at_depth(1).len());
        // Node and label ids are preserved exactly.
        for n in t.iter() {
            assert_eq!(t.label(n), r.label(n));
            assert_eq!(t.parent(n), r.parent(n));
        }
        assert_eq!(r.label_count(), t.label_count());
    }

    #[test]
    fn malformed_serialised_trees_error_instead_of_panicking() {
        // No root.
        let err = serde_json::from_str::<Tree>(r#"{"nodes":[]}"#).unwrap_err();
        assert!(err.to_string().contains("no root"), "{err}");
        // Non-root node without a parent.
        let err = serde_json::from_str::<Tree>(
            r#"{"nodes":[{"label":"r","parent":null},{"label":"a","parent":null}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no parent"), "{err}");
        // Parent id pointing past the preceding arena (corrupt order).
        let err = serde_json::from_str::<Tree>(
            r#"{"nodes":[{"label":"r","parent":null},{"label":"a","parent":7}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("outside the preceding arena"), "{err}");
        // Duplicate sibling labels cannot round-trip to distinct nodes.
        let err = serde_json::from_str::<Tree>(
            r#"{"nodes":[{"label":"r","parent":null},{"label":"a","parent":0},{"label":"a","parent":0}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicates sibling label"), "{err}");
    }

    #[test]
    fn leaf_count() {
        let t = sample();
        // No Pic, No Sound, Pixelation, Slow
        assert_eq!(t.leaf_count(), 4);
    }

    #[test]
    fn extract_preserves_survivor_order_and_adopt_preserves_subtree_order() {
        let mut t = sample();
        let surgery = t.extract_top_subtrees(|label| label == "TV");
        // TV, No Service, No Pic, No Sound, Pixelation left.
        assert_eq!(surgery.moved.len(), 5);
        assert_eq!(surgery.moved[0].label, "TV");
        assert_eq!(surgery.moved[0].parent, None);
        assert_eq!(t.len(), 3, "root, Internet, Slow survive");
        // The compacted tree equals one that never saw TV.
        let mut fresh = Tree::new("All");
        fresh.insert_path(&["Internet", "Slow"]);
        for (a, b) in t.iter().zip(fresh.iter()) {
            assert_eq!(t.label(a), fresh.label(b));
            assert_eq!(t.parent(a), fresh.parent(b));
        }
        // Survivor remap points at the compacted ids; moved slots are None.
        let internet_old = surgery
            .old_to_new
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|new| (i, new)))
            .count();
        assert_eq!(internet_old, 3);
        // Adoption appends the subtree in original relative order.
        let mut target = Tree::new("All");
        target.insert_path(&["Phone", "Dead"]);
        let ids = target.adopt_top_subtrees(&surgery.moved);
        assert_eq!(ids.len(), 5);
        let tv = target.find(&["TV"]).unwrap();
        assert_eq!(ids[0], tv);
        assert_eq!(target.find(&["TV", "No Service", "No Pic"]), Some(ids[2]));
        assert_eq!(target.depth(ids[2]), 3);
        // A fresh interleaved build has the same per-subtree structure.
        assert_eq!(target.subtree(tv).count(), 5);
        // The memo was invalidated: stale spellings resolve correctly.
        assert_eq!(t.resolve_str("Internet/Slow"), t.find(&["Internet", "Slow"]));
        assert_eq!(t.resolve_str("TV/Pixelation"), None);
    }

    #[test]
    fn extract_with_no_match_is_identity() {
        let mut t = sample();
        let before: Vec<_> = t.iter().map(|n| t.label(n).to_string()).collect();
        let surgery = t.extract_top_subtrees(|_| false);
        assert!(surgery.is_empty());
        assert_eq!(surgery.old_to_new.len(), t.len());
        for (i, slot) in surgery.old_to_new.iter().enumerate() {
            assert_eq!(slot.map(NodeId::index), Some(i));
        }
        let after: Vec<_> = t.iter().map(|n| t.label(n).to_string()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn extract_shared_labels_survive_for_other_subtrees() {
        let mut t = Tree::new("root");
        t.insert_path(&["a", "shared"]);
        t.insert_path(&["b", "shared"]);
        let surgery = t.extract_top_subtrees(|l| l == "a");
        assert_eq!(surgery.moved.len(), 2);
        assert!(t.find(&["b", "shared"]).is_some());
        assert!(t.find(&["a"]).is_none());
        // Round trip: move it back and the structure is whole again.
        let ids = t.adopt_top_subtrees(&surgery.moved);
        assert_eq!(t.label(ids[1]), "shared");
        assert_eq!(t.find(&["a", "shared"]), Some(ids[1]));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn adopting_an_existing_top_label_panics() {
        let mut src = Tree::new("root");
        src.insert_path(&["a", "x"]);
        let surgery = src.extract_top_subtrees(|l| l == "a");
        let mut dst = Tree::new("root");
        dst.insert_path(&["a", "y"]);
        dst.adopt_top_subtrees(&surgery.moved);
    }
}
