use std::fmt;
use std::hash::Hasher;

use serde::{Deserialize, Serialize};

use crate::fx::FxHasher;

/// The first non-empty segment of a `/`-separated path, without parsing
/// or allocating — `None` for the root path (`""`, `"/"`, `"//"`, …).
///
/// Empty segments are skipped exactly like [`CategoryPath`] parsing, so
/// `"/TV//NoService"` yields `"TV"`. This is the lookup a shard router
/// performs per record: the routing decision needs only the *top-level*
/// label, never a full path resolve.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::first_segment;
///
/// assert_eq!(first_segment("TV/No Service"), Some("TV"));
/// assert_eq!(first_segment("//TV/"), Some("TV"));
/// assert_eq!(first_segment("//"), None);
/// ```
pub fn first_segment(path: &str) -> Option<&str> {
    let bytes = path.as_bytes();
    let mut start = 0;
    while start < bytes.len() && bytes[start] == b'/' {
        start += 1;
    }
    if start == bytes.len() {
        return None;
    }
    let end = match find_slash(&bytes[start..]) {
        Some(off) => start + off,
        None => bytes.len(),
    };
    // `/` is ASCII, so `start` and `end` are always char boundaries.
    Some(&path[start..end])
}

/// Byte offset of the first `/` in `bytes`, scanning a word at a time.
///
/// Zero-in-word SWAR trick: xor with a splatted `/`, then
/// `(x - LO) & !x & HI` has the high bit set in exactly the bytes that
/// were `/`. The router calls this once per admitted record, so the
/// eight-bytes-per-iteration scan is worth the bit-twiddling.
#[inline]
fn find_slash(bytes: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const SPLAT: u64 = LO.wrapping_mul(b'/' as u64);
    let mut i = 0;
    while i + 8 <= bytes.len() {
        let word = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let x = word ^ SPLAT;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    bytes[i..].iter().position(|&b| b == b'/').map(|p| i + p)
}

/// A stable hash of the first non-empty segment of a `/`-separated
/// path (0 for the root path).
///
/// The hash is the crate's deterministic [`FxHasher`] over the segment
/// bytes: the same label always maps to the same value, across
/// processes and restarts, which is what makes hash-based shard routing
/// reproducible and checkpointable. Like every Fx-hashed index in this
/// crate, it is *not* DoS-resistant — sanitise adversarial category
/// feeds upstream.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::first_segment_hash;
///
/// // Only the first segment matters, and empty segments are skipped.
/// assert_eq!(first_segment_hash("TV/a/b"), first_segment_hash("/TV//z"));
/// assert_ne!(first_segment_hash("TV/a"), first_segment_hash("Internet/a"));
/// ```
pub fn first_segment_hash(path: &str) -> u64 {
    match first_segment(path) {
        Some(segment) => {
            let mut h = FxHasher::default();
            h.write(segment.as_bytes());
            h.finish()
        }
        None => 0,
    }
}

/// A category path: the sequence of labels from (but excluding) the root
/// down to a node of the hierarchy.
///
/// Paths are how operational records name their category. The record
/// `["TV", "TV No Service", "No Pic No Sound"]` names a node three levels
/// below the root of the trouble-description hierarchy. The root itself is
/// the *empty* path.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::CategoryPath;
///
/// let p: CategoryPath = "TV/TV No Service/No Pic No Sound".parse()?;
/// assert_eq!(p.depth(), 3);
/// assert_eq!(p.leaf(), Some("No Pic No Sound"));
/// assert_eq!(p.parent().unwrap().to_string(), "TV/TV No Service");
/// # Ok::<(), std::convert::Infallible>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryPath {
    labels: Vec<String>,
}

impl CategoryPath {
    /// Creates the empty path, which names the root node.
    pub fn root() -> Self {
        CategoryPath { labels: Vec::new() }
    }

    /// Creates a path from an iterator of labels.
    ///
    /// Empty labels are skipped, mirroring how `"a//b"` parses to `a/b`.
    pub fn new<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CategoryPath {
            labels: labels.into_iter().map(Into::into).filter(|s: &String| !s.is_empty()).collect(),
        }
    }

    /// Number of labels, i.e. the depth of the named node below the root.
    pub fn depth(&self) -> usize {
        self.labels.len()
    }

    /// `true` iff this is the root path.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels of this path, outermost first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The last (deepest) label, or `None` for the root path.
    pub fn leaf(&self) -> Option<&str> {
        self.labels.last().map(String::as_str)
    }

    /// The path one level up, or `None` for the root path.
    pub fn parent(&self) -> Option<CategoryPath> {
        if self.labels.is_empty() {
            None
        } else {
            Some(CategoryPath { labels: self.labels[..self.labels.len() - 1].to_vec() })
        }
    }

    /// Returns a new path with `label` appended.
    pub fn child(&self, label: impl Into<String>) -> CategoryPath {
        let mut labels = self.labels.clone();
        labels.push(label.into());
        CategoryPath { labels }
    }

    /// The prefix of this path truncated to `depth` labels.
    ///
    /// Truncating deeper than the path itself returns the whole path.
    pub fn truncate(&self, depth: usize) -> CategoryPath {
        CategoryPath { labels: self.labels[..depth.min(self.labels.len())].to_vec() }
    }

    /// `true` iff `self` is equal to `other` or an ancestor of it.
    ///
    /// This is the `⊒` relation used by the paper's §VII-B comparison: a
    /// reference anomaly at a VHO "covers" a Tiresias anomaly reported at
    /// any descendant of that VHO.
    pub fn is_ancestor_or_equal(&self, other: &CategoryPath) -> bool {
        self.labels.len() <= other.labels.len()
            && self.labels.iter().zip(&other.labels).all(|(a, b)| a == b)
    }

    /// Iterates over the labels, outermost first.
    pub fn iter(&self) -> std::slice::Iter<'_, String> {
        self.labels.iter()
    }
}

impl fmt::Display for CategoryPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, "/");
        }
        let mut first = true;
        for l in &self.labels {
            if !first {
                write!(f, "/")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for CategoryPath {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(CategoryPath::new(s.split('/').filter(|c| !c.is_empty())))
    }
}

impl From<&[&str]> for CategoryPath {
    fn from(labels: &[&str]) -> Self {
        CategoryPath::new(labels.iter().copied())
    }
}

impl From<Vec<String>> for CategoryPath {
    fn from(labels: Vec<String>) -> Self {
        CategoryPath::new(labels)
    }
}

impl FromIterator<String> for CategoryPath {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        CategoryPath::new(iter)
    }
}

impl<'a> IntoIterator for &'a CategoryPath {
    type Item = &'a String;
    type IntoIter = std::slice::Iter<'a, String>;

    fn into_iter(self) -> Self::IntoIter {
        self.labels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_path_is_empty() {
        let p = CategoryPath::root();
        assert!(p.is_root());
        assert_eq!(p.depth(), 0);
        assert_eq!(p.leaf(), None);
        assert_eq!(p.parent(), None);
        assert_eq!(p.to_string(), "/");
    }

    #[test]
    fn parse_round_trips() {
        let p: CategoryPath = "TV/TV No Service/No Pic No Sound".parse().unwrap();
        assert_eq!(p.depth(), 3);
        assert_eq!(p.to_string(), "TV/TV No Service/No Pic No Sound");
    }

    #[test]
    fn parse_skips_empty_components() {
        let p: CategoryPath = "/a//b/".parse().unwrap();
        assert_eq!(p.labels(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn parent_and_child_are_inverse() {
        let p: CategoryPath = "a/b/c".parse().unwrap();
        let parent = p.parent().unwrap();
        assert_eq!(parent.to_string(), "a/b");
        assert_eq!(parent.child("c"), p);
    }

    #[test]
    fn truncate_clamps_to_own_depth() {
        let p: CategoryPath = "a/b".parse().unwrap();
        assert_eq!(p.truncate(5), p);
        assert_eq!(p.truncate(1).to_string(), "a");
        assert_eq!(p.truncate(0), CategoryPath::root());
    }

    #[test]
    fn ancestor_relation() {
        let root = CategoryPath::root();
        let a: CategoryPath = "a".parse().unwrap();
        let ab: CategoryPath = "a/b".parse().unwrap();
        let ac: CategoryPath = "a/c".parse().unwrap();
        assert!(root.is_ancestor_or_equal(&ab));
        assert!(a.is_ancestor_or_equal(&ab));
        assert!(ab.is_ancestor_or_equal(&ab));
        assert!(!ab.is_ancestor_or_equal(&a));
        assert!(!ab.is_ancestor_or_equal(&ac));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: CategoryPath = "a".parse().unwrap();
        let ab: CategoryPath = "a/b".parse().unwrap();
        let b: CategoryPath = "b".parse().unwrap();
        assert!(a < ab);
        assert!(ab < b);
    }

    #[test]
    fn first_segment_skips_empty_labels() {
        assert_eq!(first_segment("a/b/c"), Some("a"));
        assert_eq!(first_segment("//a//b"), Some("a"));
        assert_eq!(first_segment("solo"), Some("solo"));
        assert_eq!(first_segment(""), None);
        assert_eq!(first_segment("///"), None);
    }

    #[test]
    fn first_segment_matches_split_reference() {
        // The SWAR scan must agree with the obvious split-based spec on
        // every length (word-aligned, tail, multi-byte labels, …).
        let cases = [
            "",
            "/",
            "//",
            "a",
            "a/",
            "/a",
            "abcdefgh",
            "abcdefgh/i",
            "abcdefg/h",
            "abcdefghi/j",
            "twelve-bytes!/x",
            "exactly-15-byte/",
            "é/è",
            "日本語/テスト",
            "///deep//nest///",
            "no-slash-at-all-in-a-long-label-here",
            "/leading-then-a-really-long-first-segment/tail",
        ];
        for case in cases {
            let expect = case.split('/').find(|s| !s.is_empty());
            assert_eq!(first_segment(case), expect, "case {case:?}");
        }
    }

    #[test]
    fn first_segment_hash_depends_only_on_first_segment() {
        let h = first_segment_hash("VHO-3/IO-1/CO-7");
        assert_eq!(h, first_segment_hash("VHO-3"));
        assert_eq!(h, first_segment_hash("/VHO-3/anything/else/"));
        assert_ne!(h, first_segment_hash("VHO-4/IO-1/CO-7"));
        assert_eq!(first_segment_hash("//"), 0);
        // Stable across calls (the property shard routing relies on).
        assert_eq!(h, first_segment_hash("VHO-3/IO-1/CO-7"));
    }
}
