//! Human-readable renderings of a [`Tree`]: indented ASCII outlines and
//! Graphviz DOT, optionally annotated with per-node values (weights,
//! anomaly counts, …).

use crate::tree::{NodeId, Tree};

/// Renders the subtree under `root` as an indented ASCII outline.
///
/// `annotate` may return a short per-node suffix (e.g. a weight); return
/// `None` for no annotation. `max_depth` limits how deep the outline
/// descends below `root` (use `usize::MAX` for the whole subtree).
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::{render_ascii, Tree};
///
/// let mut t = Tree::new("All");
/// t.insert_path(&["TV", "No Service"]);
/// t.insert_path(&["Internet"]);
/// let out = render_ascii(&t, t.root(), usize::MAX, |_| None);
/// assert!(out.contains("All"));
/// assert!(out.contains("└─ Internet") || out.contains("└─ TV"));
/// ```
pub fn render_ascii<F>(tree: &Tree, root: NodeId, max_depth: usize, annotate: F) -> String
where
    F: Fn(NodeId) -> Option<String>,
{
    let mut out = String::new();
    let base_depth = tree.depth(root);
    let label = |n: NodeId| -> String {
        match annotate(n) {
            Some(a) => format!("{} [{a}]", tree.label(n)),
            None => tree.label(n).to_string(),
        }
    };
    out.push_str(&label(root));
    out.push('\n');
    // Depth-first with explicit "is last child" tracking for the box
    // drawing characters.
    fn walk<F: Fn(NodeId) -> Option<String>>(
        tree: &Tree,
        node: NodeId,
        prefix: &str,
        base_depth: usize,
        max_depth: usize,
        annotate: &F,
        out: &mut String,
    ) {
        if tree.depth(node) - base_depth >= max_depth {
            return;
        }
        let children = tree.children(node);
        for (i, &c) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let branch = if last { "└─ " } else { "├─ " };
            out.push_str(prefix);
            out.push_str(branch);
            match annotate(c) {
                Some(a) => {
                    out.push_str(tree.label(c));
                    out.push_str(&format!(" [{a}]"));
                }
                None => out.push_str(tree.label(c)),
            }
            out.push('\n');
            let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
            walk(tree, c, &next_prefix, base_depth, max_depth, annotate, out);
        }
    }
    walk(tree, root, "", base_depth, max_depth, &annotate, &mut out);
    out
}

/// Renders the subtree under `root` as a Graphviz DOT digraph.
///
/// Nodes carry their label plus an optional annotation on a second
/// line; labels are escaped for DOT string syntax.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::{render_dot, Tree};
///
/// let mut t = Tree::new("All");
/// t.insert_path(&["TV"]);
/// let dot = render_dot(&t, t.root(), |_| None);
/// assert!(dot.starts_with("digraph hierarchy {"));
/// assert!(dot.contains("n0 -> n1"));
/// ```
pub fn render_dot<F>(tree: &Tree, root: NodeId, annotate: F) -> String
where
    F: Fn(NodeId) -> Option<String>,
{
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("digraph hierarchy {\n  rankdir=TB;\n  node [shape=box];\n");
    for n in tree.subtree(root) {
        let mut label = escape(tree.label(n));
        if let Some(a) = annotate(n) {
            label.push_str("\\n");
            label.push_str(&escape(&a));
        }
        out.push_str(&format!("  n{} [label=\"{}\"];\n", n.index(), label));
        for &c in tree.children(n) {
            out.push_str(&format!("  n{} -> n{};\n", n.index(), c.index()));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        let mut t = Tree::new("root");
        t.insert_path(&["a", "x"]);
        t.insert_path(&["a", "y"]);
        t.insert_path(&["b"]);
        t
    }

    #[test]
    fn ascii_outline_contains_every_label() {
        let t = sample();
        let out = render_ascii(&t, t.root(), usize::MAX, |_| None);
        for n in t.iter() {
            assert!(out.contains(t.label(n)), "missing {}", t.label(n));
        }
        // One line per node.
        assert_eq!(out.lines().count(), t.len());
    }

    #[test]
    fn ascii_depth_limit() {
        let t = sample();
        let out = render_ascii(&t, t.root(), 1, |_| None);
        assert!(out.contains("a"));
        assert!(!out.contains("x"));
    }

    #[test]
    fn ascii_annotations_appear() {
        let t = sample();
        let a = t.find(&["a"]).unwrap();
        let out = render_ascii(&t, t.root(), usize::MAX, |n| (n == a).then(|| "w=42".to_string()));
        assert!(out.contains("a [w=42]"));
    }

    #[test]
    fn ascii_subtree_render() {
        let t = sample();
        let a = t.find(&["a"]).unwrap();
        let out = render_ascii(&t, a, usize::MAX, |_| None);
        assert!(out.starts_with("a\n"));
        assert!(out.contains("x") && out.contains("y"));
        assert!(!out.contains("b"));
    }

    #[test]
    fn dot_is_wellformed() {
        let t = sample();
        let dot = render_dot(&t, t.root(), |n| Some(format!("d{}", t.depth(n))));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        // 5 nodes, 4 edges.
        assert_eq!(dot.matches("label=").count(), 5);
        assert_eq!(dot.matches("->").count(), 4);
        assert!(dot.contains("\\nd1"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut t = Tree::new("ro\"ot");
        t.insert_path(&["a\\b"]);
        let dot = render_dot(&t, t.root(), |_| None);
        assert!(dot.contains("ro\\\"ot"));
        assert!(dot.contains("a\\\\b"));
    }
}
