use serde::{Deserialize, Serialize};

use crate::tree::{NodeId, Tree};

/// Dense per-node weights over a [`Tree`], with additive aggregation.
///
/// A `WeightMap` stores one `f64` per node, indexed by [`NodeId`]. Leaf
/// weights are incremented as records arrive; [`WeightMap::aggregate`]
/// then propagates counts upward so each interior node holds the sum of
/// its subtree — the paper's *original weight* `A_n[k, t]`.
///
/// # Example
///
/// ```
/// use tiresias_hierarchy::{Tree, WeightMap};
///
/// let mut t = Tree::new("All");
/// let a = t.insert_path(&["TV", "No Service"]);
/// let b = t.insert_path(&["TV", "Pixelation"]);
/// let mut w = WeightMap::zeros(&t);
/// w.add(a, 3.0);
/// w.add(b, 2.0);
/// w.aggregate(&t);
/// let tv = t.find(&["TV"]).unwrap();
/// assert_eq!(w.weight(tv), 5.0);
/// assert_eq!(w.weight(t.root()), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightMap {
    weights: Vec<f64>,
}

impl WeightMap {
    /// Creates a map of zeros sized for `tree`.
    pub fn zeros(tree: &Tree) -> Self {
        WeightMap { weights: vec![0.0; tree.len()] }
    }

    /// Creates a map of zeros for a tree with `len` nodes.
    pub fn with_len(len: usize) -> Self {
        WeightMap { weights: vec![0.0; len] }
    }

    /// Number of per-node slots.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` iff the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Grows the map with zero slots so it covers a tree that gained
    /// nodes since the map was created.
    pub fn resize_for(&mut self, tree: &Tree) {
        if self.weights.len() < tree.len() {
            self.weights.resize(tree.len(), 0.0);
        }
    }

    /// The weight of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this map.
    pub fn weight(&self, id: NodeId) -> f64 {
        self.weights[id.index()]
    }

    /// Sets the weight of `id`.
    pub fn set(&mut self, id: NodeId, w: f64) {
        self.weights[id.index()] = w;
    }

    /// Adds `delta` to the weight of `id`.
    pub fn add(&mut self, id: NodeId, delta: f64) {
        self.weights[id.index()] += delta;
    }

    /// Resets every slot to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.weights.iter_mut().for_each(|w| *w = 0.0);
    }

    /// Propagates weights bottom-up: after this call every node holds the
    /// sum of the *pre-aggregation* weights over its entire subtree.
    ///
    /// Records attached directly to interior nodes are preserved — they
    /// behave like an extra invisible leaf child, keeping the hierarchy
    /// additive.
    pub fn aggregate(&mut self, tree: &Tree) {
        for id in tree.rev_level_order() {
            if let Some(p) = tree.parent(id) {
                self.weights[p.index()] += self.weights[id.index()];
            }
        }
    }

    /// Sum of leaf weights (equals the root weight after
    /// [`WeightMap::aggregate`]).
    pub fn leaf_total(&self, tree: &Tree) -> f64 {
        tree.iter().filter(|&n| tree.is_leaf(n)).map(|n| self.weights[n.index()]).sum()
    }

    /// Immutable view of the raw weight slots, indexed by
    /// [`NodeId::index`].
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Tree {
        let mut t = Tree::new("r");
        t.insert_path(&["a", "x"]);
        t.insert_path(&["a", "y"]);
        t.insert_path(&["b"]);
        t
    }

    #[test]
    fn aggregate_sums_children() {
        let t = tree();
        let mut w = WeightMap::zeros(&t);
        w.add(t.find(&["a", "x"]).unwrap(), 1.0);
        w.add(t.find(&["a", "y"]).unwrap(), 2.0);
        w.add(t.find(&["b"]).unwrap(), 4.0);
        w.aggregate(&t);
        assert_eq!(w.weight(t.find(&["a"]).unwrap()), 3.0);
        assert_eq!(w.weight(t.root()), 7.0);
    }

    #[test]
    fn interior_direct_weight_is_preserved() {
        let t = tree();
        let mut w = WeightMap::zeros(&t);
        let a = t.find(&["a"]).unwrap();
        w.add(a, 10.0); // record classified at an interior category
        w.add(t.find(&["a", "x"]).unwrap(), 1.0);
        w.aggregate(&t);
        assert_eq!(w.weight(a), 11.0);
        assert_eq!(w.weight(t.root()), 11.0);
    }

    #[test]
    fn clear_zeroes_everything() {
        let t = tree();
        let mut w = WeightMap::zeros(&t);
        w.add(t.root(), 5.0);
        w.clear();
        assert!(w.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn resize_for_grows_only() {
        let mut t = tree();
        let mut w = WeightMap::zeros(&t);
        let before = w.len();
        t.insert_path(&["c", "z"]);
        w.resize_for(&t);
        assert_eq!(w.len(), t.len());
        assert!(w.len() > before);
        w.resize_for(&t); // idempotent
        assert_eq!(w.len(), t.len());
    }

    #[test]
    fn leaf_total_matches_root_after_aggregate() {
        let t = tree();
        let mut w = WeightMap::zeros(&t);
        for (i, n) in t.iter().filter(|&n| t.is_leaf(n)).enumerate() {
            w.add(n, (i + 1) as f64);
        }
        let total = w.leaf_total(&t);
        w.aggregate(&t);
        assert_eq!(w.weight(t.root()), total);
    }
}
