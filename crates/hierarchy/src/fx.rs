//! An FxHash-style hasher for the hot lookup paths.
//!
//! The std `HashMap` defaults to SipHash-1-3, whose per-lookup cost
//! dominates small-key probes like the tree's `(NodeId, LabelId)` child
//! index. This is the classic rustc "Fx" multiply-rotate hash: not
//! DoS-resistant, but 3–5× faster on short keys — the right trade for
//! in-process indexes keyed by values we assign ourselves.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (rustc's `FxHasher` recipe).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("chunk of 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b"ab"), hash(b"ba"));
        assert_ne!(hash(b"a"), hash(b"a\0"));
        assert_ne!(hash(b"12345678"), hash(b"123456789"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert((i, i * 7), i);
        }
        assert_eq!(m.get(&(3, 21)), Some(&3));
        assert_eq!(m.len(), 100);
    }
}
