use std::error::Error;
use std::fmt;

/// Errors produced by hierarchy construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HierarchyError {
    /// A category path referenced a node that does not exist in the tree.
    UnknownPath(String),
    /// A path component was empty, which is not a valid label.
    EmptyLabel,
    /// A [`crate::HierarchySpec`] declared zero levels, which cannot
    /// describe a hierarchy.
    EmptySpec,
    /// A per-level fan-out of zero was requested below the deepest level.
    ZeroDegree {
        /// 1-based level whose fan-out was zero.
        level: usize,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::UnknownPath(p) => write!(f, "unknown category path `{p}`"),
            HierarchyError::EmptyLabel => write!(f, "category labels must be non-empty"),
            HierarchyError::EmptySpec => {
                write!(f, "hierarchy spec must declare at least one level")
            }
            HierarchyError::ZeroDegree { level } => {
                write!(f, "level {level} declares a fan-out of zero")
            }
        }
    }
}

impl Error for HierarchyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            HierarchyError::UnknownPath("a/b".into()).to_string(),
            HierarchyError::EmptyLabel.to_string(),
            HierarchyError::EmptySpec.to_string(),
            HierarchyError::ZeroDegree { level: 2 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<HierarchyError>();
    }
}
